"""The epoch-driven simulation loop.

Per epoch: each active core generates its trace, the traces interleave
round-robin into the shared hierarchy, per-core timing accumulates, and the
system's ``end_epoch`` hook fires (for MorphCache this is the
reconfiguration point).  Results are collected per epoch so the time-series
figures (Fig 2(a), Fig 15's per-epoch oracle) fall out directly.

Two resilience hooks thread through the loop (both default to off):

- a :class:`~repro.resilience.faults.FaultPlan` injects deterministic,
  seeded faults at each epoch boundary *before* any access;
- ``checkpoint_path`` writes a resumable checkpoint every
  ``checkpoint_every`` epochs; ``resume=True`` loads it, fast-forward
  replays the completed epochs (deterministic given the seed) and verifies
  the rebuilt RNG and cache state against the checkpoint before continuing,
  so a resumed run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import MachineConfig
from repro.cpu.core_model import CoreTimingModel
from repro.obs import metrics as obs_metrics
from repro.obs.trace import SCHEMA_VERSION, hierarchy_delta, snapshot_hierarchy
from repro.resilience.checkpoint import (
    epoch_from_json,
    load_checkpoint,
    run_fingerprint,
    save_checkpoint,
    state_digest,
    verify_replay,
)
from repro.resilience.errors import CheckpointError
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.sim.workload import Workload

#: Valid values for :func:`simulate`'s ``engine`` argument.  Both engines
#: are bit-identical on supported systems (the batch engine falls back to
#: the event engine otherwise), so checkpoints do not record the engine and
#: a run may switch engines across a resume.
ENGINES = ("event", "batch")


@dataclass(frozen=True)
class EpochResult:
    """Measurements of one epoch."""

    epoch: int
    ipcs: Dict[int, float]
    """Per-active-core IPC."""

    misses: Dict[int, int]
    """Per-active-core main-memory accesses during the epoch."""

    topology_label: Optional[str]
    """Topology in force after the epoch's reconfiguration (if reported)."""

    @property
    def throughput(self) -> float:
        return sum(self.ipcs.values())


@dataclass
class RunResult:
    """All epochs of one (scheme, workload) run."""

    workload_name: str
    scheme_name: str
    epochs: List[EpochResult] = field(default_factory=list)

    @property
    def mean_throughput(self) -> float:
        if not self.epochs:
            return 0.0
        return sum(e.throughput for e in self.epochs) / len(self.epochs)

    def mean_ipcs(self) -> Dict[int, float]:
        """Per-core IPC averaged over the epochs in which the core ran.

        The core set is the *union* across epochs, and each core averages
        over its own active epochs only — a core that goes inactive (or
        joins) mid-run still gets a correct mean instead of a ``KeyError``
        or a silently dropped entry.
        """
        totals: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for e in self.epochs:
            for core, ipc in e.ipcs.items():
                totals[core] = totals.get(core, 0.0) + ipc
                counts[core] = counts.get(core, 0) + 1
        return {core: totals[core] / counts[core] for core in sorted(totals)}

    def throughput_series(self) -> List[float]:
        return [e.throughput for e in self.epochs]


def run_epoch(system, traces: Dict[int, object], timers: Dict[int, CoreTimingModel],
              n_accesses: int) -> None:
    """Drive one epoch's traces through ``system``, round-robin interleaved.

    The inner loop is the hottest code in the simulator, so all per-access
    conversion work is hoisted out of it: the numpy trace arrays are
    converted to plain Python lists once per epoch (``tolist`` yields the
    same ``int``/``bool`` values the old per-access ``int()``/``bool()``
    casts produced, so results are bit-identical) and the per-core bound
    methods and columns are resolved once.  ``bench_hotpath.py`` times this
    exact function.
    """
    columns = [
        (core, timers[core].account,
         trace.lines.tolist(), trace.writes.tolist(), trace.gaps.tolist())
        for core, trace in traces.items()
    ]
    access = system.access
    for i in range(n_accesses):
        for core, account, lines, writes, gaps in columns:
            account(gaps[i], access(core, lines[i], writes[i]))


def simulate(
    system,
    workload: Workload,
    config: MachineConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
    accesses_per_core: Optional[int] = None,
    warmup_epochs: int = 1,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_path=None,
    checkpoint_every: int = 5,
    resume: bool = False,
    engine: str = "event",
    tracer=None,
) -> RunResult:
    """Run ``workload`` on ``system`` for the configured number of epochs.

    ``system`` implements the CmpSystem protocol (``access``, ``end_epoch``,
    ``miss_counts``).  The first ``warmup_epochs`` epochs warm the caches
    (and let MorphCache take its first reconfiguration steps); they are
    simulated but not recorded, mirroring the paper's warmed-up region of
    interest.

    Args:
        fault_plan: deterministic fault schedule applied at each epoch
            boundary (warmup included) before any access.
        checkpoint_path: when set, write a resumable checkpoint here every
            ``checkpoint_every`` epochs and after the final epoch.
        checkpoint_every: checkpoint cadence in (global) epochs.
        resume: load ``checkpoint_path``, fast-forward replay the completed
            epochs and verify the rebuilt state against it before
            continuing.  Raises :class:`~repro.resilience.errors.
            CheckpointError` if the checkpoint is absent, corrupt, belongs
            to a different run, or the replay diverges.
        engine: ``"event"`` (default) drives accesses one at a time through
            :func:`run_epoch`; ``"batch"`` resolves each epoch with the
            set-partitioned array engine (:mod:`repro.sim.batch`), which is
            bit-identical and falls back to the event engine for systems it
            cannot batch.  Checkpoints are engine-agnostic.
        tracer: optional :class:`~repro.obs.trace.TraceRecorder`.  All trace
            emission happens at epoch boundaries in this shared loop (plus
            the controller's in-boundary reconfig hook), so both engines
            emit byte-identical traces for the same run.  During a resume's
            fast-forward replay the tracer is suspended, leaving exactly the
            post-resume records in a resumed trace.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}: choose one of {ENGINES}")
    if engine == "batch":
        from repro.sim.batch import run_epoch_batch as epoch_runner
    else:
        epoch_runner = run_epoch
    n_epochs = epochs if epochs is not None else config.epochs
    n_accesses = (accesses_per_core if accesses_per_core is not None
                  else config.accesses_per_core_per_epoch)
    threads = workload.build_threads(config, seed=seed)
    active = [core for core, thread in enumerate(threads) if thread is not None]
    result = RunResult(workload_name=workload.name,
                       scheme_name=getattr(system, "label", type(system).__name__))
    injector = FaultInjector(fault_plan) if fault_plan else None

    fingerprint = None
    if checkpoint_path is not None:
        fingerprint = run_fingerprint(workload, config, result.scheme_name,
                                      seed, n_epochs, n_accesses, warmup_epochs)
        if fault_plan:
            fingerprint["faults"] = repr(fault_plan)

    replay_until = 0  # epochs [0, replay_until) are re-run without recording
    payload = None
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume requires a checkpoint path")
        payload = load_checkpoint(checkpoint_path, fingerprint)
        replay_until = int(payload["next_epoch"])
        result.epochs = [epoch_from_json(e) for e in payload["epochs"]]

    # Observability wiring.  Everything below is epoch-granular: the access
    # hot loop (run_epoch / the batch kernels) is never touched, which is
    # what keeps the tracing-off overhead at zero.
    controller = getattr(system, "controller", None)
    hierarchy = getattr(system, "hierarchy", None)
    hier_stats = getattr(hierarchy, "stats", None)
    guard_log = (getattr(getattr(controller, "guard", None), "events", None)
                 if controller is not None else None)
    reg = obs_metrics.REGISTRY
    if reg.enabled:
        reg.counter("repro_sim_runs_total", "Simulation runs started",
                    labels=("engine",)).labels(engine=engine).inc()
    if tracer is not None:
        tracer.emit("run-start", schema=SCHEMA_VERSION,
                    workload=workload.name, scheme=result.scheme_name,
                    seed=seed, epochs=n_epochs, accesses_per_core=n_accesses,
                    warmup_epochs=warmup_epochs, cores=active,
                    faults=repr(fault_plan) if fault_plan else None)
        tracer.suspended = replay_until > 0
        if controller is not None:
            controller.tracer = tracer

    previous_misses = system.miss_counts()
    total = warmup_epochs + n_epochs
    try:
        for epoch in range(total):
            if injector is not None:
                faults_before = len(injector.log)
                injector.begin_epoch(epoch, system)
                if tracer is not None:
                    for fault in injector.log[faults_before:]:
                        tracer.emit("fault", epoch=epoch, fault=fault.kind,
                                    level=fault.level, target=fault.target,
                                    duration=fault.duration, bits=fault.bits,
                                    penalty=fault.penalty)
            timers = {
                core: CoreTimingModel(config.issue_width,
                                      memory_latency=config.latency.memory)
                for core in active
            }
            traces = {core: threads[core].generate(n_accesses)
                      for core in active}
            guard_before = len(guard_log) if guard_log is not None else 0
            stats_before = (snapshot_hierarchy(hier_stats)
                            if tracer is not None and not tracer.suspended
                            and hier_stats is not None else None)
            epoch_runner(system, traces, timers, n_accesses)

            label = system.end_epoch()
            current_misses = system.miss_counts()
            if tracer is not None:
                if guard_log is not None:
                    for guard_event in guard_log[guard_before:]:
                        tracer.emit("guard", epoch=epoch,
                                    action=guard_event.action,
                                    violation=str(guard_event.violation),
                                    mode_after=guard_event.mode_after)
                record = {
                    "epoch": epoch,
                    "measured": (epoch - warmup_epochs
                                 if epoch >= warmup_epochs else None),
                    "label": label,
                    "ipcs": {str(core): timers[core].ipc for core in active},
                    "misses": {str(core): current_misses.get(core, 0)
                               - previous_misses.get(core, 0)
                               for core in active},
                }
                if stats_before is not None:
                    record["stats"] = hierarchy_delta(
                        stats_before, snapshot_hierarchy(hier_stats))
                    record["bus_penalty"] = hierarchy.bus_penalty
                    record["topology"] = {
                        lvl: [list(g) for g in groups]
                        for lvl, groups in hierarchy.topology().items()}
                if tracer.epoch_digests:
                    record["digest"] = state_digest(system)
                tracer.emit("epoch", **record)
            if reg.enabled:
                reg.counter("repro_sim_epochs_total",
                            "Epochs simulated (warmup included)").inc()
                reg.counter("repro_sim_accesses_total",
                            "Memory accesses driven through the engines"
                            ).inc(n_accesses * len(active))
            if epoch >= replay_until and epoch >= warmup_epochs:
                result.epochs.append(EpochResult(
                    epoch=epoch - warmup_epochs,
                    ipcs={core: timers[core].ipc for core in active},
                    misses={
                        core: current_misses.get(core, 0)
                        - previous_misses.get(core, 0)
                        for core in active
                    },
                    topology_label=label,
                ))
            previous_misses = current_misses

            if payload is not None and epoch + 1 == replay_until:
                # Replay complete: prove the rebuilt state matches the
                # checkpoint before recording a single new epoch.
                verify_replay(payload, threads, system, checkpoint_path)
                payload = None
                if tracer is not None:
                    tracer.suspended = False
            if (checkpoint_path is not None and epoch + 1 > replay_until
                    and ((epoch + 1) % checkpoint_every == 0
                         or epoch + 1 == total)):
                save_checkpoint(checkpoint_path, fingerprint, epoch + 1,
                                result.epochs, threads, system)
    finally:
        if tracer is not None and controller is not None:
            controller.tracer = None
    if tracer is not None:
        tracer.suspended = False
        footer = {
            "epochs": len(result.epochs),
            "mean_throughput": result.mean_throughput,
            "digest": state_digest(system),
        }
        if controller is not None:
            footer["reconfigurations"] = controller.reconfigurations
        tracer.emit("run-end", **footer)
        tracer.flush()
    return result
