"""Batched epoch engine: set-partitioned, bit-identical to the event engine.

MorphCache only reconfigures at epoch boundaries, so within one epoch the
topology, search orders and latencies are frozen.  The event engine
(:func:`repro.sim.engine.run_epoch`) still pays a per-access Python dispatch
through ``system.access`` and ``CoreTimingModel.account``; this module
resolves the same epoch as a small number of array operations plus one
specialised kernel loop, and produces **bit-identical** results — the same
hit/miss decisions, the same stamps and LRU orders, the same statistics,
ACFVs and ``cycles`` floats, pinned by the golden-determinism fixtures and
the differential suite (``tests/sim/test_batch_equivalence.py``).

Why reordering is sound — the set-partition argument (DESIGN.md §7):

1. Stamps are positional.  The hierarchy increments its stamp counter once
   per access regardless of outcome, so access ``g`` of the round-robin
   interleave always receives stamp ``base + 1 + g``.  The batch engine
   reserves the whole range up front (:meth:`CacheHierarchy.advance_stamp`)
   and hands each access its stamp explicitly.

2. Every structure a reference can touch shares its low ``line`` bits.
   With power-of-two set counts the smallest level's index bits are a
   subset of every level's index bits, so a reference, its LRU victims
   (same set per level), its L1 dirty write-back target (same L1 set),
   inclusion back-invalidations (same set at the lower levels) and
   coherence invalidations (same line) all agree on
   ``line & (partition_sets - 1)``.  Each cache set at every level is
   therefore wholly owned by one partition.

3. Hence resolving partition 0's subsequence (in its original global
   order), then partition 1's, … performs exactly the same operations on
   exactly the same per-set state in exactly the same per-set order as the
   fully interleaved stream.  Per-core/per-slice counters are integer sums
   (order-free); observer effects are gated to order-free ones (ACFV
   ``on_hit`` is a bitwise OR; see :func:`_observer_order_free`).

4. Timing sums exactly.  ``cycles`` accumulates dyadic rationals on a
   coarse grid whenever ``issue_width`` is a power of two and the hidden
   off-chip fraction is a multiple of 2**-8 (the defaults), so any
   regrouping of the sum is exact — ``CoreTimingModel.account_summary``
   reproduces the scalar loop bit for bit.  Configurations outside that
   envelope fall back to order-preserving accounting.

Kernels:

- **private** — all-private LRU topologies (``_private_fast`` on every
  core): the hottest benchmark path.  A single tight loop with the slice
  probes inlined, per-core integer counters instead of per-access stat
  increments and no per-access timing calls; ≥3× the event engine
  (BENCH_batch.json).
- **merged / shared** — LRU topologies with multi-slice groups (the
  configurations MorphCache's merge decisions create, including under
  faults): the slice-group kernel (:func:`_run_group_kernel`).  Sets are
  partitioned at the slice-*group* level — the set-partition argument
  holds unchanged because every slice of a group is probed at the same
  set index — and the per-access probe of every group slice is replaced
  by one aggregate ``line -> slice`` residency map per multi-slice group
  (:meth:`CacheHierarchy.group_line_index`), built by a single scan,
  cached across epochs and maintained incrementally by the kernel's own
  fills/evictions/back-invalidations/lazy invalidations.  The ``shared``
  tag is the fully-shared special case (one L2 group spanning the
  machine); mechanically the same kernel.
- **general** — anything else (PLRU, order-sensitive observers,
  timing-inexact configurations): the real access path driven in global
  order with batched timing.
- **event fallback** — systems without a batchable hierarchy (PIPP, DSR,
  UCP) run the event engine unchanged; :func:`run_epoch_batch` reports
  which path it took.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.caches.cache import Entry
from repro.caches.hierarchy import CacheHierarchy, HierarchyObserver, L2, L3
from repro.core.acfv import AcfvBank
from repro.cpu.cmp import CmpSystem
from repro.cpu.core_model import CoreTimingModel
from repro.obs import metrics as obs_metrics
from repro.sim.engine import run_epoch

#: Tags returned by :func:`run_epoch_batch` naming the path taken.
PRIVATE_PERCORE = "batch-private-percore"
PRIVATE_KERNEL = "batch-private"
MERGED_KERNEL = "batch-merged"
SHARED_KERNEL = "batch-shared"
GENERAL_KERNEL = "batch-general"
EVENT_FALLBACK = "event"


def _record_tier(tag: str) -> str:
    """Count the dispatch tier taken (once per epoch; off-path cost is one
    flag check, within the <2% tracing-off budget)."""
    reg = obs_metrics.REGISTRY
    if reg.enabled:
        reg.counter("repro_batch_epochs_total",
                    "Epochs resolved by the batch engine, by dispatch tier",
                    labels=("tier",)).labels(tier=tag).inc()
    return tag


def batch_unsupported(system) -> Optional[str]:
    """Why ``system`` cannot be batched this epoch, or None if it can.

    Only a plain :class:`~repro.cpu.cmp.CmpSystem` (MorphCache or a static
    topology) exposes the hierarchy the kernels operate on; the PIPP/DSR/
    UCP baselines implement the access protocol with their own organisations
    and run on the event engine.
    """
    if type(system) is not CmpSystem:
        label = getattr(system, "label", type(system).__name__)
        return f"scheme {label!r} does not expose a batchable hierarchy"
    if not isinstance(system.hierarchy, CacheHierarchy):
        return "system.hierarchy is not a CacheHierarchy"
    return None


def run_epoch_batch(system, traces: Dict[int, object],
                    timers: Dict[int, CoreTimingModel],
                    n_accesses: int) -> str:
    """Drive one epoch like :func:`~repro.sim.engine.run_epoch`, batched.

    Drop-in replacement: same signature, same post-state, same timer
    contents, bit for bit.  Returns the path taken
    (``batch-private-percore``, ``batch-private``, ``batch-merged``,
    ``batch-shared``, ``batch-general`` or ``event`` for the fallback),
    which the tests and benchmarks assert on.
    """
    if batch_unsupported(system) is not None:
        run_epoch(system, traces, timers, n_accesses)
        return _record_tier(EVENT_FALLBACK)
    active = list(traces)
    if not active or n_accesses <= 0:
        return _record_tier(GENERAL_KERNEL)
    hier = system.hierarchy
    gap_sums = {core: int(traces[core].gaps[:n_accesses].sum())
                for core in active}
    order_free = _observer_order_free(hier)

    if (hier.all_private_fast
            and order_free
            and _private_timing_exact(hier, timers, active, gap_sums,
                                      n_accesses)):
        if _percore_applicable(hier, traces, active, n_accesses):
            _run_private_percore(hier, timers, traces, active, n_accesses,
                                 gap_sums)
            _mark_percore_clean(hier)
            return _record_tier(PRIVATE_PERCORE)
        lines, writes, cores = _interleave(traces, active, n_accesses)
        _run_private_kernel(hier, timers, active, n_accesses,
                            lines, writes, cores, gap_sums)
        return _record_tier(PRIVATE_KERNEL)
    if (order_free
            and hier.config.replacement == "lru"
            and _group_timing_exact(hier, timers, active, gap_sums,
                                    n_accesses)):
        lines, writes, cores = _interleave(traces, active, n_accesses)
        _run_group_kernel(hier, timers, active, n_accesses,
                          lines, writes, cores, gap_sums)
        # Fully shared (one L2 group spanning the machine) is the paper's
        # "(cores:1:1)" end of the spectrum; anything else multi-slice is
        # a merged topology.  The distinction is observability only.
        if len(hier._l2_groups) == 1:
            return _record_tier(SHARED_KERNEL)
        return _record_tier(MERGED_KERNEL)
    lines, writes, cores = _interleave(traces, active, n_accesses)
    _run_general(system, timers, traces, active, n_accesses,
                 lines, writes, cores)
    return _record_tier(GENERAL_KERNEL)


# -- epoch materialisation ---------------------------------------------------

def _interleave(traces, active: List[int],
                n_accesses: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The deterministic round-robin global interleave, as arrays.

    Access ``i`` of core rank ``r`` lands at global index ``i * k + r`` —
    exactly the order the event engine's nested loop visits.  Strided
    assignment keeps this at numpy speed with no ``tolist`` round trip.
    """
    k = len(active)
    total = n_accesses * k
    lines = np.empty(total, dtype=np.int64)
    writes = np.empty(total, dtype=bool)
    for rank, core in enumerate(active):
        trace = traces[core]
        lines[rank::k] = trace.lines[:n_accesses]
        writes[rank::k] = trace.writes[:n_accesses]
    cores = np.tile(np.asarray(active, dtype=np.int64), n_accesses)
    return lines, writes, cores


def _observer_order_free(hier: CacheHierarchy) -> bool:
    """Whether the installed observer commutes across partitions.

    The base observer's hooks are no-ops; an :class:`AcfvBank` with no
    eviction-time clearing only ever ORs bits in on hits, so the final
    vectors are independent of cross-partition order.  Any other observer
    (or clear-on-evict banks, where a cross-partition hash collision could
    interleave a set and a clear of the same bit differently) routes the
    epoch to the order-preserving general kernel.
    """
    observer = hier.observer
    if type(observer) is HierarchyObserver:
        return True
    if type(observer) is AcfvBank:
        return not observer.clear_levels
    return False


def _private_timing_exact(hier, timers, active, gap_sums,
                          n_accesses: int) -> bool:
    """Whether every active timer admits exact order-free summation."""
    lat = hier.config.latency
    max_latency = max(lat.l1_hit, lat.l2_local_hit, lat.l3_local_hit,
                      lat.memory) + lat.coherence_invalidate
    for core in active:
        timer = timers[core]
        bound = timer.cycles + gap_sums[core] + n_accesses * max_latency + 1
        if not timer.batch_summation_exact(bound):
            return False
    return True


def _group_timing_exact(hier, timers, active, gap_sums,
                        n_accesses: int) -> bool:
    """The exactness check for the group kernel: its latency bound must
    additionally cover remote merged hits (distance span, bus-fault
    penalty), which :meth:`CacheHierarchy.max_access_latency` folds in."""
    max_latency = hier.max_access_latency()
    for core in active:
        timer = timers[core]
        bound = timer.cycles + gap_sums[core] + n_accesses * max_latency + 1
        if not timer.batch_summation_exact(bound):
            return False
    return True


# -- the per-core kernel (no shared lines) -----------------------------------
#
# Under an all-private topology an access by core ``c`` touches only core
# ``c``'s slices — *except* through lines that more than one core has ever
# referenced: the L1 directory entry of such a line can carry foreign
# holders, so a write (coherence invalidation) or an eviction
# (back-invalidation) by one core can reach into another core's L1.  When
# no line is shared — the overwhelmingly common case for multiprogrammed
# mixes, whose address spaces are disjoint by construction — the cores are
# fully independent and each trace can run back-to-back in its own tight
# loop (no interleave, no partition sort, stamps by arithmetic), which is
# the fastest path in the engine.
#
# Sharedness is *verified*, not assumed: a full scan of the resident state
# builds a line -> owner map (cached on the hierarchy, invalidated whenever
# the stamp, groups or fault sets changed outside this kernel), and each
# epoch's trace lines are checked against it.  Any conflict — two owners
# for a line, a multi-holder directory entry, a trace touching a foreign
# line, a multi-slice L3 cover under faults — falls back to the partition
# kernel, which handles sharing exactly.

_PERCORE_ATTR = "_batch_percore_state"


def _percore_marker(hier: CacheHierarchy) -> tuple:
    """Fingerprint of everything that can move state outside this kernel.

    The stamp advances on every access (any engine), and group/fault
    changes cover reconfiguration repair, which mutates state without
    consuming stamps.  Repair only *removes* entries, so a stale owner map
    can never hide new sharing — at worst it fails a check conservatively.
    """
    return (hier._stamp,
            tuple(hier._l2_groups), tuple(hier._l3_groups),
            frozenset(hier.disabled_slices(L2)),
            frozenset(hier.disabled_slices(L3)))


#: Granularity of the slot-level ownership fast path, in line-address bits.
#: Synthetic workloads place each thread's private region in its own
#: ``1 << 40``-aligned stride (and shared regions far above), so after the
#: first epoch a core's whole trace usually falls inside one slot it already
#: owns outright — an O(1) min/max check instead of a per-line scan.  The
#: constant is a heuristic only; correctness never depends on alignment.
_SLOT_BITS = 40


def _scan_owners(hier: CacheHierarchy) -> Optional[Tuple[Dict[int, int],
                                                         Dict[int, int]]]:
    """Build resident line -> owner (and slot -> owner) maps, or None.

    Fills always stamp the accessing core as ``owner`` under a private
    topology, so two residencies of one line under different owners (or a
    multi-holder directory entry) prove the line was referenced by more
    than one core.  A slot maps to a core only while *every* recorded line
    in it belongs to that core (-1 marks a slot shared between cores).
    """
    owners: Dict[int, int] = {}
    slots: Dict[int, int] = {}
    for slices in (hier.l1s, hier.l2s, hier.l3s):
        for slice_ in slices:
            for ways in slice_._data:
                for entry in ways:
                    if owners.setdefault(entry.line, entry.owner) != entry.owner:
                        return None
    for line, holders in hier._l1_directory.items():
        if len(holders) > 1:
            return None
        for holder in holders:
            if owners.setdefault(line, holder) != holder:
                return None
    for line, owner in owners.items():
        slot = line >> _SLOT_BITS
        if slots.setdefault(slot, owner) != owner:
            slots[slot] = -1
    return owners, slots


def _percore_applicable(hier: CacheHierarchy, traces, active: List[int],
                        n_accesses: int) -> bool:
    """Whether this epoch can run core-by-core, committing trace ownership.

    On success the epoch's new lines are recorded in the cached owner map
    (the kernel preserves the no-sharing invariant, so the cache stays
    valid).  On failure nothing is recorded as clean — the next epoch
    rescans.
    """
    if any(len(cover) != 1 for cover in hier._l3_group_of):
        return False
    # Singleton L2 groups give the kernel strict per-slice inclusion
    # (L1 ⊆ own L2 slice ⊆ own L3 slice), which it exploits to skip
    # back-invalidation probes; fault-merged groups use the partition
    # kernel instead.
    if any(len(group) != 1 for group in hier._l2_group_of):
        return False
    state = getattr(hier, _PERCORE_ATTR, None)
    if state is None or state["marker"] != _percore_marker(hier):
        state = {"marker": None, "maps": _scan_owners(hier)}
        setattr(hier, _PERCORE_ATTR, state)
    maps = state["maps"]
    if maps is None:
        return False
    owners, slots = maps
    get = owners.get
    slot_get = slots.get
    for core in active:
        arr = traces[core].lines[:n_accesses]
        lo = int(arr.min())
        hi = int(arr.max())
        slot = lo >> _SLOT_BITS
        if hi >> _SLOT_BITS == slot and slot_get(slot) == core:
            # Every line of the epoch falls in a slot whose recorded lines
            # all belong to this core already — nothing new to commit.
            continue
        for line in set(arr.tolist()):
            owner = get(line)
            if owner is None:
                owners[line] = core
                line_slot = line >> _SLOT_BITS
                if slots.setdefault(line_slot, core) != core:
                    slots[line_slot] = -1
            elif owner != core:
                # Shared line (or a stale claim on a long-dead one):
                # conservative fallback; the partition kernel is exact.
                return False
    return True


def _mark_percore_clean(hier: CacheHierarchy) -> None:
    """Record that the cached owner map matches the post-epoch state."""
    state = getattr(hier, _PERCORE_ATTR)
    state["marker"] = _percore_marker(hier)


def _run_private_percore(hier: CacheHierarchy, timers, traces,
                         active: List[int], n_accesses: int,
                         gap_sums: Dict[int, int]) -> None:
    """All-private epoch with no shared lines: one tight loop per core.

    Bit-identical to the event engine because, with every line referenced
    by exactly one core, *no* operation of one core's access can read or
    write another core's structures — the global round-robin order is then
    equivalent to any per-core grouping.  Stamps remain positional
    (access ``i`` of rank ``r`` gets ``base + 1 + i*k + r``), and the
    coherence branches are provably dead: a multi-holder set cannot exist,
    so writes only set the dirty bit exactly as the event path would.

    The L1 directory is *reconstructed* rather than maintained per access:
    under the gate a core's directory entries are exactly
    ``{line: {core}}`` for its resident L1 lines, nothing reads the
    directory during the epoch (both coherence reads are dead), and the
    back-invalidation probe "is the victim in some L1?" is answered by the
    L1 index itself — so deleting the entries that left the L1 and adding
    fresh ``{core}`` singletons for the ones that joined, once per core,
    yields the identical final directory.  Statistics and timing flush per
    core from integer counts, as in the partition kernel.
    """
    config = hier.config
    k = len(active)
    base = hier.advance_stamp(n_accesses * k)
    m1 = config.l1.sets - 1
    m2 = config.l2_slice.sets - 1
    m3 = config.l3_slice.sets - 1
    w1 = config.l1.ways
    w2 = config.l2_slice.ways
    w3 = config.l3_slice.ways
    lat = config.latency
    lat_l1, lat_l2, lat_l3 = lat.l1_hit, lat.l2_local_hit, lat.l3_local_hit
    lat_mem = lat.memory
    directory = hier._l1_directory
    notify_hit = hier._notify_hit
    on_hit = hier.observer.on_hit
    new_entry = Entry
    core_stats = hier.stats.cores
    l2_stats = hier._l2_slice_stats
    l3_stats = hier._l3_slice_stats

    for rank, core in enumerate(active):
        trace = traces[core]
        lines_list = trace.lines[:n_accesses].tolist()
        writes_list = trace.writes[:n_accesses].tolist()
        l1x = hier.l1s[core]._index
        l1d = hier.l1s[core]._data
        l2x = hier.l2s[core]._index
        l2d = hier.l2s[core]._data
        l3x = hier.l3s[core]._index
        l3d = hier.l3s[core]._data
        # Directory reconstruction (see docstring): remember what is in
        # this L1 now, fix the directory up after the loop.
        old_resident = {ln for bucket in l1x for ln in bucket}
        # Insertion counts need no loop counters: every L3/mem resolution
        # fills L2 (ins2 == cl3 + cmem) and every mem resolution fills L3
        # (ins3 == cmem).
        # cl3 is derived at flush (cl3 = n - cl1 - cl2 - cmem): the L3-hit
        # branch is the most-executed one, so it carries no counter at all.
        cl1 = cl2 = cmem = evi2 = evi3 = 0
        stamp = base + rank + 1 - k

        for line, write in zip(lines_list, writes_list):
            stamp += k
            set1 = line & m1
            bucket1 = l1x[set1]
            if line in bucket1:
                entry = bucket1[line]
                entry.stamp = stamp
                del bucket1[line]
                bucket1[line] = entry
                cl1 += 1
                if write:
                    entry.dirty = True
                continue

            set2 = line & m2
            bucket2 = l2x[set2]
            if line in bucket2:
                entry = bucket2[line]
                entry.stamp = stamp
                del bucket2[line]
                bucket2[line] = entry
                cl2 += 1
                if notify_hit:
                    on_hit(L2, core, core, line)
            else:
                set3 = line & m3
                bucket3 = l3x[set3]
                entry = bucket3.get(line)
                if entry is not None:
                    entry.stamp = stamp
                    del bucket3[line]
                    bucket3[line] = entry
                    if notify_hit:
                        on_hit(L3, core, core, line)
                else:
                    cmem += 1
                    ways3 = l3d[set3]
                    if len(ways3) >= w3:
                        for v_line in bucket3:
                            break
                        victim = bucket3.pop(v_line)
                        ways3.remove(victim)
                        victim.line = line
                        victim.owner = core
                        victim.dirty = write
                        victim.stamp = stamp
                        ways3.append(victim)
                        bucket3[line] = victim
                        evi3 += 1
                        # Inclusion: the L3 cover is this core alone (gate).
                        # Strict per-slice inclusion (singleton L2 group)
                        # means a victim absent from the L2 slice cannot be
                        # in the L1 either; the directory entry, if any, is
                        # exactly {core} and gets rebuilt at flush.
                        v_set2 = v_line & m2
                        ve = l2x[v_set2].pop(v_line, None)
                        if ve is not None:
                            l2d[v_set2].remove(ve)
                            evi2 += 1
                            v_set1 = v_line & m1
                            ve = l1x[v_set1].pop(v_line, None)
                            if ve is not None:
                                l1d[v_set1].remove(ve)
                    else:
                        entry = new_entry(line, core, write, stamp)
                        ways3.append(entry)
                        bucket3[line] = entry

                ways2 = l2d[set2]
                if len(ways2) >= w2:
                    for v_line in bucket2:
                        break
                    victim = bucket2.pop(v_line)
                    ways2.remove(victim)
                    victim.line = line
                    victim.owner = core
                    victim.dirty = write
                    victim.stamp = stamp
                    ways2.append(victim)
                    bucket2[line] = victim
                    evi2 += 1
                    v_set1 = v_line & m1
                    ve = l1x[v_set1].pop(v_line, None)
                    if ve is not None:
                        l1d[v_set1].remove(ve)
                else:
                    entry = new_entry(line, core, write, stamp)
                    ways2.append(entry)
                    bucket2[line] = entry

            # Fill L1.  The victim's holder set is exactly {core} (no
            # sharing), so the discard-then-empty-delete of the event path
            # collapses to a plain delete — deferred to the flush, along
            # with the fresh singleton insert for the filled line.
            ways1 = l1d[set1]
            if len(ways1) >= w1:
                for v_line in bucket1:
                    break
                victim = bucket1.pop(v_line)
                ways1.remove(victim)
                if victim.dirty:
                    # Inclusion guarantees the L2 copy exists (a KeyError
                    # here would mean the gate's invariant was violated).
                    l2x[v_line & m2][v_line].dirty = True
                victim.line = line
                victim.owner = core
                victim.dirty = write
                victim.stamp = stamp
                entry = victim
            else:
                entry = new_entry(line, core, write, stamp)
            ways1.append(entry)
            bucket1[line] = entry

        # Directory fix-up: entries whose lines left this L1 disappear,
        # lines that joined get fresh {core} singletons, survivors keep
        # their (value-identical) sets — exactly the event engine's final
        # directory for this core.
        new_resident = {ln for bucket in l1x for ln in bucket}
        for ln in old_resident - new_resident:
            del directory[ln]
        for ln in new_resident - old_resident:
            directory[ln] = {core}

        # Per-core flush: counters into stats, one exact timing reduction.
        cl3 = n_accesses - cl1 - cl2 - cmem
        core_stats[core].add_access_counts(
            accesses=n_accesses, l1_hits=cl1, l2_local_hits=cl2,
            l3_local_hits=cl3, memory_accesses=cmem,
            memory_cycles=cmem * lat_mem)
        stats2 = l2_stats[core]
        stats2.hits += cl2
        stats2.misses += cl3 + cmem
        stats2.insertions += cl3 + cmem
        stats2.evictions += evi2
        stats3 = l3_stats[core]
        stats3.hits += cl3
        stats3.misses += cmem
        stats3.insertions += cmem
        stats3.evictions += evi3
        timer = timers[core]
        ml = timer.memory_latency
        latency_sum = cl1 * lat_l1 + cl2 * lat_l2 + cl3 * lat_l3 \
            + cmem * lat_mem
        offchip = (cl1 * int(lat_l1 >= ml) + cl2 * int(lat_l2 >= ml)
                   + cl3 * int(lat_l3 >= ml) + cmem * int(lat_mem >= ml))
        timer.account_summary(n_accesses, gap_sums[core], latency_sum,
                              offchip)


# -- the all-private kernel --------------------------------------------------

def _run_private_kernel(hier: CacheHierarchy, timers, active: List[int],
                        n_accesses: int, lines: np.ndarray,
                        writes: np.ndarray, cores: np.ndarray,
                        gap_sums: Dict[int, int]) -> None:
    """Set-partitioned resolution of an all-private LRU epoch.

    Semantically identical to ``CacheHierarchy._access_private`` driven in
    global order, with the whole access *and fill* chain inlined into one
    loop: the probes and recency updates are the same dict operations, the
    fills/evictions/back-invalidations mutate the same lockstep structures
    the hierarchy's own ``_fill_private``/``_fill_l1_private``/
    ``_back_invalidate`` would (entry recycling included), and per-core
    integer counts replace per-access stat and timer updates (flushed once
    at the end; integer sums commute and the timing decomposition is exact,
    see module docstring).  Observer ``on_fill``/``on_evict`` calls are
    elided outright: the kernel only runs under :func:`_observer_order_free`,
    where both hooks are no-ops (``AcfvBank.on_fill`` never counts fills and
    ``on_evict`` returns immediately with ``clear_levels`` empty).
    """
    config = hier.config
    n_cores = config.cores
    total = len(lines)
    base = hier.advance_stamp(total)

    part_mask = hier.partition_sets - 1
    if part_mask:
        order = np.argsort(lines & part_mask, kind="stable")
        stamps_list = (order + (base + 1)).tolist()
        lines_list = lines[order].tolist()
        writes_list = writes[order].tolist()
        cores_list = cores[order].tolist()
    else:
        # One partition: the global order is already the per-set order.
        stamps_list = list(range(base + 1, base + total + 1))
        lines_list = lines.tolist()
        writes_list = writes.tolist()
        cores_list = cores.tolist()

    l1s, l2s, l3s = hier.l1s, hier.l2s, hier.l3s
    l1_idx = [s._index for s in l1s]
    l2_idx = [s._index for s in l2s]
    l3_idx = [s._index for s in l3s]
    l1_data = [s._data for s in l1s]
    l2_data = [s._data for s in l2s]
    l3_data = [s._data for s in l3s]
    m1 = config.l1.sets - 1
    m2 = config.l2_slice.sets - 1
    m3 = config.l3_slice.sets - 1
    w1 = config.l1.ways
    w2 = config.l2_slice.ways
    w3 = config.l3_slice.ways
    # With sibling slices fault-disabled a core can be private-fast while
    # its L3 group still covers several L2 slices; inclusion then sweeps
    # them all, exactly as _back_invalidate does.
    l3_cover = [hier._l3_group_of[c] for c in range(n_cores)]
    directory = hier._l1_directory
    notify_hit = hier._notify_hit
    on_hit = hier.observer.on_hit
    inval_others = hier._invalidate_other_l1s
    new_entry = Entry

    lat = config.latency
    lat_l1, lat_l2, lat_l3 = lat.l1_hit, lat.l2_local_hit, lat.l3_local_hit
    lat_mem, coh = lat.memory, lat.coherence_invalidate

    c_l1 = [0] * n_cores
    c_l2 = [0] * n_cores
    c_l3 = [0] * n_cores
    c_mem = [0] * n_cores
    ins2 = [0] * n_cores
    evi2 = [0] * n_cores
    ins3 = [0] * n_cores
    evi3 = [0] * n_cores
    lat_extra = [0] * n_cores
    off_extra = [0] * n_cores
    # Off-chip-threshold crossings a coherence penalty can cause, per core
    # and hit level (0 in any realistic configuration; kept exact anyway).
    hc1 = [0] * n_cores
    hc2 = [0] * n_cores
    hc3 = [0] * n_cores
    hcm = [0] * n_cores
    for core in active:
        ml = timers[core].memory_latency
        hc1[core] = int(lat_l1 + coh >= ml) - int(lat_l1 >= ml)
        hc2[core] = int(lat_l2 + coh >= ml) - int(lat_l2 >= ml)
        hc3[core] = int(lat_l3 + coh >= ml) - int(lat_l3 >= ml)
        hcm[core] = int(lat_mem + coh >= ml) - int(lat_mem >= ml)

    for line, write, core, stamp in zip(lines_list, writes_list,
                                        cores_list, stamps_list):
        # L1 probe (recency-dict hit), as in _access_private.
        set1 = line & m1
        bucket1 = l1_idx[core][set1]
        entry = bucket1.get(line)
        if entry is not None:
            entry.stamp = stamp
            del bucket1[line]
            bucket1[line] = entry
            c_l1[core] += 1
            if write:
                entry.dirty = True
                holders = directory.get(line)
                if holders is not None and len(holders) > 1:
                    lat_extra[core] += inval_others(core, line)
                    off_extra[core] += hc1[core]
            continue

        # L2 probe.
        bucket2 = l2_idx[core][line & m2]
        entry = bucket2.get(line)
        if entry is not None:
            entry.stamp = stamp
            del bucket2[line]
            bucket2[line] = entry
            c_l2[core] += 1
            hc_level = hc2
            if notify_hit:
                on_hit(L2, core, core, line)
        else:
            # L3 probe.
            bucket3 = l3_idx[core][line & m3]
            entry = bucket3.get(line)
            if entry is not None:
                entry.stamp = stamp
                del bucket3[line]
                bucket3[line] = entry
                c_l3[core] += 1
                hc_level = hc3
                if notify_hit:
                    on_hit(L3, core, core, line)
            else:
                # Main memory; fill L3 (inlined _fill_private, observer
                # fill/evict hooks elided — no-ops under the gate).
                c_mem[core] += 1
                hc_level = hcm
                ways3 = l3_data[core][line & m3]
                if len(ways3) >= w3:
                    victim = next(iter(bucket3.values()))
                    v_line = victim.line
                    ways3.remove(victim)
                    del bucket3[v_line]
                    victim.line = line
                    victim.owner = core
                    victim.dirty = write
                    victim.stamp = stamp
                    ways3.append(victim)
                    bucket3[line] = victim
                    ins3[core] += 1
                    evi3[core] += 1
                    # Inclusion (_back_invalidate at L3): drop the victim
                    # from every covered L2 slice, then from the L1s.
                    v_set2 = v_line & m2
                    for cov in l3_cover[core]:
                        ve = l2_idx[cov][v_set2].pop(v_line, None)
                        if ve is not None:
                            l2_data[cov][v_set2].remove(ve)
                            evi2[cov] += 1
                    holders = directory.get(v_line)
                    if holders:
                        v_set1 = v_line & m1
                        for hc in list(holders):
                            ve = l1_idx[hc][v_set1].pop(v_line, None)
                            if ve is not None:
                                l1_data[hc][v_set1].remove(ve)
                        del directory[v_line]
                else:
                    entry = new_entry(line, core, write, stamp)
                    ways3.append(entry)
                    bucket3[line] = entry
                    ins3[core] += 1

            # Fill L2 (both the L3-hit and memory paths).
            ways2 = l2_data[core][line & m2]
            if len(ways2) >= w2:
                victim = next(iter(bucket2.values()))
                v_line = victim.line
                ways2.remove(victim)
                del bucket2[v_line]
                victim.line = line
                victim.owner = core
                victim.dirty = write
                victim.stamp = stamp
                ways2.append(victim)
                bucket2[line] = victim
                ins2[core] += 1
                evi2[core] += 1
                # Inclusion (_back_invalidate at L2): L1 holders only.
                holders = directory.get(v_line)
                if holders:
                    v_set1 = v_line & m1
                    for hc in list(holders):
                        ve = l1_idx[hc][v_set1].pop(v_line, None)
                        if ve is not None:
                            l1_data[hc][v_set1].remove(ve)
                    del directory[v_line]
            else:
                entry = new_entry(line, core, write, stamp)
                ways2.append(entry)
                bucket2[line] = entry
                ins2[core] += 1

        # Fill L1 (every non-L1-hit path; inlined _fill_l1_private).
        ways1 = l1_data[core][set1]
        if len(ways1) >= w1:
            victim = next(iter(bucket1.values()))
            v_line = victim.line
            del bucket1[v_line]
            ways1.remove(victim)
            holders = directory.get(v_line)
            if holders is not None:
                holders.discard(core)
                if not holders:
                    del directory[v_line]
            if victim.dirty:
                l2e = l2_idx[core][v_line & m2].get(v_line)
                if l2e is not None:
                    l2e.dirty = True
            victim.line = line
            victim.owner = core
            victim.dirty = write
            victim.stamp = stamp
            entry = victim
        else:
            entry = new_entry(line, core, write, stamp)
        ways1.append(entry)
        bucket1[line] = entry
        holders = directory.get(line)
        if holders is None:
            directory[line] = {core}
        else:
            holders.add(core)

        if write:
            holders = directory.get(line)
            if holders is not None and len(holders) > 1:
                lat_extra[core] += inval_others(core, line)
                off_extra[core] += hc_level[core]

    # Flush: integer sums into the real stats, one exact reduction per timer.
    core_stats = hier.stats.cores
    l2_stats = hier._l2_slice_stats
    l3_stats = hier._l3_slice_stats
    for c in range(n_cores):
        if ins2[c] or evi2[c]:
            stats = l2_stats[c]
            stats.insertions += ins2[c]
            stats.evictions += evi2[c]
        if ins3[c] or evi3[c]:
            stats = l3_stats[c]
            stats.insertions += ins3[c]
            stats.evictions += evi3[c]
    for core in active:
        n1, n2, n3, nm = c_l1[core], c_l2[core], c_l3[core], c_mem[core]
        core_stats[core].add_access_counts(
            accesses=n_accesses, l1_hits=n1, l2_local_hits=n2,
            l3_local_hits=n3, memory_accesses=nm,
            memory_cycles=nm * lat_mem)
        l2_stats[core].add_probe_counts(hits=n2, misses=n3 + nm)
        l3_stats[core].add_probe_counts(hits=n3, misses=nm)
        timer = timers[core]
        ml = timer.memory_latency
        latency_sum = (n1 * lat_l1 + n2 * lat_l2 + n3 * lat_l3
                       + nm * lat_mem + lat_extra[core])
        offchip = (n1 * int(lat_l1 >= ml) + n2 * int(lat_l2 >= ml)
                   + n3 * int(lat_l3 >= ml) + nm * int(lat_mem >= ml)
                   + off_extra[core])
        timer.account_summary(n_accesses, gap_sums[core], latency_sum,
                              offchip)


# -- the slice-group kernel (merged / shared topologies) ---------------------
#
# The configurations MorphCache's merge decisions create — multi-slice L2/L3
# groups, up to one fully-shared group spanning the machine — used to run on
# the general kernel at ~event-engine speed, because each access probed every
# slice of its group through the full Python access path.  The group kernel
# closes that gap with one idea: a *group-level aggregate residency map*.
#
# Within an epoch the topology is frozen, so for each multi-slice group a
# single scan builds ``line -> holding slice`` (with a side map for the
# duplicate copies a merge leaves behind).  A group probe then becomes one
# dict lookup instead of O(group size) slice probes, and every mutation the
# kernel performs — fills, evictions, inclusion back-invalidations, lazy
# invalidations — updates the map incrementally, so it stays exact.  The
# maps are cached on the hierarchy across epochs under the same fingerprint
# the per-core kernel uses (stamp + groups + fault sets): steady-state
# epochs pay no scan at all.
#
# Bit-identity rests on the same set-partition argument as the private
# kernel, *lifted to slice groups* (DESIGN.md §7): all slices of a group are
# probed at one set index per level, the group-wide LRU victim search reads
# only that set in each slice, back-invalidation and the dirty write-back
# stay on the victim's (subset) index bits, and lazy invalidation picks its
# winner by maximum stamp — stamps are unique, so the choice is order-free.
# Everything latency-relevant is precomputed per epoch (per-core × per-slice
# hit latency tables honouring ``charge_remote_latency``, the segmented-bus
# distance span and any bus-fault penalty), and timing flushes through one
# exact reduction per core, gated by :func:`_group_timing_exact`.

_GROUP_ATTR = "_batch_group_state"


def _group_state(hier: CacheHierarchy) -> dict:
    """Cached aggregate residency maps for every multi-slice group.

    Rebuilt (one scan of the resident state via
    :meth:`CacheHierarchy.group_line_index`) whenever the fingerprint shows
    state moved outside this kernel: any access through any engine advances
    the stamp, and reconfiguration/fault repair changes the group tuples or
    disabled sets.  Mutating slice contents behind the hierarchy's back
    (directly calling ``CacheSlice.flush`` etc.) is outside the contract.
    """
    state = getattr(hier, _GROUP_ATTR, None)
    if state is None or state["marker"] != _percore_marker(hier):
        maps = {}
        for level, groups in ((L2, hier._l2_groups), (L3, hier._l3_groups)):
            for group in groups:
                if len(group) > 1:
                    maps[(level, group)] = hier.group_line_index(level, group)
        state = {"marker": None, "maps": maps}
        setattr(hier, _GROUP_ATTR, state)
    return state


def _mark_group_clean(hier: CacheHierarchy) -> None:
    """Record that the cached residency maps match the post-epoch state."""
    getattr(hier, _GROUP_ATTR)["marker"] = _percore_marker(hier)


def _group_index_remove(index: Dict[int, int], dups: Dict[int, set],
                        line: int, slice_id: int) -> None:
    """Drop one slice's copy of ``line`` from a group residency map.

    A duplicated line whose holder count falls to one collapses back into
    the plain index (its ``dups`` entry disappears), so the maps stay
    canonical: ``dups`` holds exactly the lines marked ``-1`` in ``index``.
    """
    prev = index.get(line)
    if prev == slice_id:
        del index[line]
    elif prev == -1:
        holders = dups[line]
        holders.discard(slice_id)
        if len(holders) == 1:
            index[line] = holders.pop()
            del dups[line]


def _run_group_kernel(hier: CacheHierarchy, timers, active: List[int],
                      n_accesses: int, lines: np.ndarray, writes: np.ndarray,
                      cores: np.ndarray, gap_sums: Dict[int, int]) -> None:
    """Set-partitioned resolution of a merged/shared LRU epoch.

    Semantically identical to ``CacheHierarchy.access`` driven in global
    order: group probes resolve through the aggregate residency maps (one
    dict lookup instead of probing every slice), hits replay ``touch`` on
    the winning slice, duplicate copies replay lazy invalidation (freshest
    stamp wins, dirtiness folds into the winner), fills replay
    ``_fill_group`` placement (local slice if its set has room, else first
    slice in search order with room, else the group-wide LRU victim) with
    ``_back_invalidate`` inlined, and L1 handling replays ``_fill_l1`` —
    including its first-in-search-order dirty write-back.  Per-core and
    per-slice integer counters flush once at the end, and timing flushes
    through one exact reduction per core (the dispatch gate verified
    exactness against the worst-case latency bound).  Observer
    ``on_fill``/``on_evict`` are elided — no-ops under
    :func:`_observer_order_free` — and ``on_hit`` fires exactly where the
    event path would.
    """
    state = _group_state(hier)
    maps = state["maps"]

    config = hier.config
    n_cores = config.cores
    total = len(lines)
    base = hier.advance_stamp(total)

    part_mask = hier.partition_sets - 1
    if part_mask:
        order = np.argsort(lines & part_mask, kind="stable")
        stamps_list = (order + (base + 1)).tolist()
        lines_list = lines[order].tolist()
        writes_list = writes[order].tolist()
        cores_list = cores[order].tolist()
    else:
        stamps_list = list(range(base + 1, base + total + 1))
        lines_list = lines.tolist()
        writes_list = writes.tolist()
        cores_list = cores.tolist()

    l1_idx = [s.set_buckets() for s in hier.l1s]
    l1_data = [s.way_lists() for s in hier.l1s]
    l2_idx = [s.set_buckets() for s in hier.l2s]
    l2_data = [s.way_lists() for s in hier.l2s]
    l3_idx = [s.set_buckets() for s in hier.l3s]
    l3_data = [s.way_lists() for s in hier.l3s]
    m1 = config.l1.sets - 1
    m2 = config.l2_slice.sets - 1
    m3 = config.l3_slice.sets - 1
    w1 = config.l1.ways
    w2 = config.l2_slice.ways
    w3 = config.l3_slice.ways

    ord2 = hier._l2_binding.orders
    ord3 = hier._l3_binding.orders
    grp3 = hier._l3_group_of
    # Per-core group views: the residency maps for multi-slice groups, or
    # the single probe target for singleton groups (-1 when the core's only
    # slice is fault-disabled, i.e. its search order is empty).
    gi2 = [maps.get((L2, g)) for g in hier._l2_group_of]
    gi3 = [maps.get((L3, g)) for g in grp3]
    d2 = [ord2[c][0] if (gi2[c] is None and ord2[c]) else -1
          for c in range(n_cores)]
    d3 = [ord3[c][0] if (gi3[c] is None and ord3[c]) else -1
          for c in range(n_cores)]

    lat = config.latency
    lat_l1 = lat.l1_hit
    lat_mem = lat.memory
    charge = hier.charge_remote_latency
    hop = lat.distance_cycles_per_hop
    bus = hier.bus_penalty

    def _hit_latencies(local_hit: int, merged_hit: int) -> List[List[int]]:
        # lat[core][slice]: what _lookup_group charges for a hit served by
        # ``slice`` on behalf of ``core`` — statics run flat local
        # latencies, morphcache pays merged + bus span + fault penalty.
        if not charge:
            return [[local_hit] * n_cores for _ in range(n_cores)]
        return [[local_hit if s == c
                 else merged_hit + max(0, (abs(s - c) - 1) * hop) + bus
                 for s in range(n_cores)]
                for c in range(n_cores)]

    lat2 = _hit_latencies(lat.l2_local_hit, lat.l2_merged_hit)
    lat3 = _hit_latencies(lat.l3_local_hit, lat.l3_merged_hit)

    c_l1 = [0] * n_cores
    c_l2l = [0] * n_cores
    c_l2r = [0] * n_cores
    c_l3l = [0] * n_cores
    c_l3r = [0] * n_cores
    c_mem = [0] * n_cores
    hit2 = [0] * n_cores
    miss2 = [0] * n_cores
    ins2 = [0] * n_cores
    evi2 = [0] * n_cores
    lazy2 = [0] * n_cores
    hit3 = [0] * n_cores
    miss3 = [0] * n_cores
    ins3 = [0] * n_cores
    evi3 = [0] * n_cores
    lazy3 = [0] * n_cores
    lat_sum = [0] * n_cores
    off = [0] * n_cores
    ml = [0] * n_cores
    for core in active:
        ml[core] = timers[core].memory_latency

    directory = hier._l1_directory
    notify_hit = hier._notify_hit
    on_hit = hier.observer.on_hit
    inval_others = hier._invalidate_other_l1s
    new_entry = Entry

    def fill_l1(core: int, line: int, write: bool, stamp: int) -> None:
        # _fill_l1 inlined (entry recycling included; value-identical).
        set1 = line & m1
        ways = l1_data[core][set1]
        bucket = l1_idx[core][set1]
        if len(ways) >= w1:
            victim = next(iter(bucket.values()))
            v_line = victim.line
            del bucket[v_line]
            ways.remove(victim)
            holders = directory.get(v_line)
            if holders is not None:
                holders.discard(core)
                if not holders:
                    del directory[v_line]
            if victim.dirty:
                # The write-back lands on the *first* copy in search order
                # (same set, hence same partition) — not the freshest one;
                # _fill_l1 probes in order and stops at the first hit.
                v_set2 = v_line & m2
                for s in ord2[core]:
                    l2e = l2_idx[s][v_set2].get(v_line)
                    if l2e is not None:
                        l2e.dirty = True
                        break
            victim.line = line
            victim.owner = core
            victim.dirty = write
            victim.stamp = stamp
            entry = victim
        else:
            entry = new_entry(line, core, write, stamp)
        ways.append(entry)
        bucket[line] = entry
        holders = directory.get(line)
        if holders is None:
            directory[line] = {core}
        else:
            holders.add(core)

    def fill_l2(core: int, line: int, write: bool, stamp: int):
        # _fill_group at L2 with insert inlined and the residency map
        # maintained; returns the slice filled, or None (group offline).
        o = ord2[core]
        if not o:
            return None
        set2 = line & m2
        target = -1
        for s in o:
            if len(l2_data[s][set2]) < w2:
                target = s
                break
        if target < 0:
            oldest = None
            for s in o:
                cand = next(iter(l2_idx[s][set2].values()))
                if oldest is None or cand.stamp < oldest:
                    oldest = cand.stamp
                    target = s
        ways = l2_data[target][set2]
        bucket = l2_idx[target][set2]
        g = gi2[target]
        if len(ways) >= w2:
            victim = next(iter(bucket.values()))
            v_line = victim.line
            ways.remove(victim)
            del bucket[v_line]
            victim.line = line
            victim.owner = core
            victim.dirty = write
            victim.stamp = stamp
            ways.append(victim)
            bucket[line] = victim
            ins2[target] += 1
            evi2[target] += 1
            if g is not None:
                index, dups = g
                _group_index_remove(index, dups, v_line, target)
                index[line] = target
            # _back_invalidate at L2: only the L1 holders must go.
            holders = directory.get(v_line)
            if holders:
                v_set1 = v_line & m1
                for hc in list(holders):
                    ve = l1_idx[hc][v_set1].pop(v_line, None)
                    if ve is not None:
                        l1_data[hc][v_set1].remove(ve)
                del directory[v_line]
        else:
            entry = new_entry(line, core, write, stamp)
            ways.append(entry)
            bucket[line] = entry
            ins2[target] += 1
            if g is not None:
                g[0][line] = target
        return target

    def fill_l3(core: int, line: int, write: bool, stamp: int):
        # _fill_group at L3; its back-invalidation additionally sweeps the
        # covered L2 slices (same subset index bits, same partition).
        o = ord3[core]
        if not o:
            return None
        set3 = line & m3
        target = -1
        for s in o:
            if len(l3_data[s][set3]) < w3:
                target = s
                break
        if target < 0:
            oldest = None
            for s in o:
                cand = next(iter(l3_idx[s][set3].values()))
                if oldest is None or cand.stamp < oldest:
                    oldest = cand.stamp
                    target = s
        ways = l3_data[target][set3]
        bucket = l3_idx[target][set3]
        g = gi3[target]
        if len(ways) >= w3:
            victim = next(iter(bucket.values()))
            v_line = victim.line
            ways.remove(victim)
            del bucket[v_line]
            victim.line = line
            victim.owner = core
            victim.dirty = write
            victim.stamp = stamp
            ways.append(victim)
            bucket[line] = victim
            ins3[target] += 1
            evi3[target] += 1
            if g is not None:
                index, dups = g
                _group_index_remove(index, dups, v_line, target)
                index[line] = target
            v_set2 = v_line & m2
            for cov in grp3[target]:
                ve = l2_idx[cov][v_set2].pop(v_line, None)
                if ve is not None:
                    l2_data[cov][v_set2].remove(ve)
                    evi2[cov] += 1
                    gcov = gi2[cov]
                    if gcov is not None:
                        _group_index_remove(gcov[0], gcov[1], v_line, cov)
            holders = directory.get(v_line)
            if holders:
                v_set1 = v_line & m1
                for hc in list(holders):
                    ve = l1_idx[hc][v_set1].pop(v_line, None)
                    if ve is not None:
                        l1_data[hc][v_set1].remove(ve)
                del directory[v_line]
        else:
            entry = new_entry(line, core, write, stamp)
            ways.append(entry)
            bucket[line] = entry
            ins3[target] += 1
            if g is not None:
                g[0][line] = target
        return target

    for line, write, core, stamp in zip(lines_list, writes_list,
                                        cores_list, stamps_list):
        # L1 probe (recency-dict hit).
        set1 = line & m1
        bucket1 = l1_idx[core][set1]
        entry = bucket1.get(line)
        if entry is not None:
            entry.stamp = stamp
            del bucket1[line]
            bucket1[line] = entry
            c_l1[core] += 1
            latency = lat_l1
            if write:
                entry.dirty = True
                holders = directory.get(line)
                if holders is not None and len(holders) > 1:
                    latency += inval_others(core, line)
            lat_sum[core] += latency
            if latency >= ml[core]:
                off[core] += 1
            continue

        # L2 group probe through the aggregate residency map (singleton
        # groups probe their one slice directly).
        win = -1
        g = gi2[core]
        if g is None:
            s = d2[core]
            if s >= 0:
                e2 = l2_idx[s][line & m2].get(line)
                if e2 is not None:
                    win = s
        else:
            index, dups = g
            s = index.get(line, -2)
            if s >= 0:
                e2 = l2_idx[s][line & m2][line]
                win = s
            elif s == -1:
                # Duplicate copies from a merge: lazy invalidation.  The
                # freshest copy wins (stamps are unique, so max-by-stamp
                # is order-free), the rest vanish, dirtiness folds in.
                copies = sorted(
                    ((l2_idx[ds][line & m2][line], ds) for ds in dups[line]),
                    key=lambda it: it[0].stamp, reverse=True)
                e2, win = copies[0]
                for de, ds in copies[1:]:
                    del l2_idx[ds][line & m2][line]
                    l2_data[ds][line & m2].remove(de)
                    lazy2[ds] += 1
                    if de.dirty:
                        e2.dirty = True
                index[line] = win
                del dups[line]
        if win >= 0:
            e2.stamp = stamp
            b = l2_idx[win][line & m2]
            del b[line]
            b[line] = e2
            hit2[win] += 1
            if win == core:
                c_l2l[core] += 1
            else:
                c_l2r[core] += 1
            if notify_hit:
                on_hit(L2, win, core, line)
            latency = lat2[core][win]
            fill_l1(core, line, write, stamp)
            if write:
                holders = directory.get(line)
                if holders and (len(holders) > 1 or core not in holders):
                    latency += inval_others(core, line)
            lat_sum[core] += latency
            if latency >= ml[core]:
                off[core] += 1
            continue
        miss2[core] += 1

        # L3 group probe.
        win = -1
        g = gi3[core]
        if g is None:
            s = d3[core]
            if s >= 0:
                e3 = l3_idx[s][line & m3].get(line)
                if e3 is not None:
                    win = s
        else:
            index, dups = g
            s = index.get(line, -2)
            if s >= 0:
                e3 = l3_idx[s][line & m3][line]
                win = s
            elif s == -1:
                copies = sorted(
                    ((l3_idx[ds][line & m3][line], ds) for ds in dups[line]),
                    key=lambda it: it[0].stamp, reverse=True)
                e3, win = copies[0]
                for de, ds in copies[1:]:
                    del l3_idx[ds][line & m3][line]
                    l3_data[ds][line & m3].remove(de)
                    lazy3[ds] += 1
                    if de.dirty:
                        e3.dirty = True
                index[line] = win
                del dups[line]
        if win >= 0:
            e3.stamp = stamp
            b = l3_idx[win][line & m3]
            del b[line]
            b[line] = e3
            hit3[win] += 1
            if win == core:
                c_l3l[core] += 1
            else:
                c_l3r[core] += 1
            if notify_hit:
                on_hit(L3, win, core, line)
            latency = lat3[core][win]
            if fill_l2(core, line, write, stamp) is not None:
                fill_l1(core, line, write, stamp)
            if write:
                holders = directory.get(line)
                if holders and (len(holders) > 1 or core not in holders):
                    latency += inval_others(core, line)
            lat_sum[core] += latency
            if latency >= ml[core]:
                off[core] += 1
            continue
        miss3[core] += 1

        # Main memory; fills cascade only while the parent level succeeded
        # (a fully-offline group skips the lower levels too — inclusion).
        c_mem[core] += 1
        latency = lat_mem
        if fill_l3(core, line, write, stamp) is not None:
            if fill_l2(core, line, write, stamp) is not None:
                fill_l1(core, line, write, stamp)
        if write:
            holders = directory.get(line)
            if holders and (len(holders) > 1 or core not in holders):
                latency += inval_others(core, line)
        lat_sum[core] += latency
        if latency >= ml[core]:
            off[core] += 1

    # Flush: integer sums into the real stats, one exact reduction per timer.
    core_stats = hier.stats.cores
    l2_stats = hier._l2_slice_stats
    l3_stats = hier._l3_slice_stats
    for c in range(n_cores):
        if hit2[c] or miss2[c]:
            l2_stats[c].add_probe_counts(hits=hit2[c], misses=miss2[c])
        if ins2[c] or evi2[c] or lazy2[c]:
            stats = l2_stats[c]
            stats.insertions += ins2[c]
            stats.evictions += evi2[c]
            stats.lazy_invalidations += lazy2[c]
        if hit3[c] or miss3[c]:
            l3_stats[c].add_probe_counts(hits=hit3[c], misses=miss3[c])
        if ins3[c] or evi3[c] or lazy3[c]:
            stats = l3_stats[c]
            stats.insertions += ins3[c]
            stats.evictions += evi3[c]
            stats.lazy_invalidations += lazy3[c]
    for core in active:
        core_stats[core].add_access_counts(
            accesses=n_accesses, l1_hits=c_l1[core],
            l2_local_hits=c_l2l[core], l2_remote_hits=c_l2r[core],
            l3_local_hits=c_l3l[core], l3_remote_hits=c_l3r[core],
            memory_accesses=c_mem[core], memory_cycles=c_mem[core] * lat_mem)
        timers[core].account_summary(n_accesses, gap_sums[core],
                                     lat_sum[core], off[core])
    _mark_group_clean(hier)


# -- the general kernel ------------------------------------------------------

def _run_general(system, timers, traces, active: List[int], n_accesses: int,
                 lines: np.ndarray, writes: np.ndarray,
                 cores: np.ndarray) -> None:
    """Any-topology epoch: real access path in global order, batched timing.

    Merged groups, fault-disabled slices, PLRU and order-sensitive
    observers all take this path.  It performs exactly the event engine's
    access calls in exactly the event engine's order (so it is trivially
    bit-identical in cache state), and defers only the timing to
    ``account_batch`` — whose per-core latency sequences preserve the
    per-core access order, making even its non-exact scalar fallback
    reproduce the event engine's rounding sequence.
    """
    access = system.access
    latencies: Dict[int, List[int]] = {core: [] for core in active}
    appends = {core: latencies[core].append for core in active}
    append_list = [appends.get(c) for c in range(max(active) + 1)]
    for line, write, core in zip(lines.tolist(), writes.tolist(),
                                 cores.tolist()):
        append_list[core](access(core, line, write))
    for core in active:
        timers[core].account_batch(traces[core].gaps[:n_accesses],
                                   latencies[core])
