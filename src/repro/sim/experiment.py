"""Experiment orchestration: build systems, run schemes, normalise results.

This is the layer the benchmark harness and the examples drive.  A *scheme*
is a name — ``morphcache``, a static ``(x:y:z)`` label, ``pipp`` or ``dsr``
— that :func:`build_system` turns into a system implementing the engine
protocol; :func:`run_scheme` wires it to a workload and simulates.

:func:`alone_ipcs` provides the per-application alone-run IPCs that the
weighted and fair speedup metrics normalise against (each benchmark run by
itself on the all-shared baseline machine), cached per machine
configuration because mixes share benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.dsr import DsrSystem
from repro.baselines.pipp import PippSystem
from repro.baselines.ucp import UcpSystem
from repro.config import MachineConfig, MorphConfig
from repro.cpu.cmp import CmpSystem
from repro.obs.trace import TraceRecorder
from repro.resilience.faults import FaultPlan
from repro.sim.engine import RunResult, simulate
from repro.sim.workload import Workload

MORPHCACHE = "morphcache"
PIPP = "pipp"
DSR = "dsr"
UCP = "ucp"

#: Builders for the non-static schemes; static ``(x:y:z)`` labels are
#: recognised structurally.
SCHEME_BUILDERS = {
    MORPHCACHE: lambda config, workload, seed, morph: CmpSystem(
        config,
        morph=morph or MorphConfig(),
        shared_address_space=workload.shared_address_space,
    ),
    PIPP: lambda config, workload, seed, morph: PippSystem(config, seed=seed),
    DSR: lambda config, workload, seed, morph: DsrSystem(config, seed=seed),
    UCP: lambda config, workload, seed, morph: UcpSystem(config, seed=seed),
}


def build_system(
    scheme: str,
    config: MachineConfig,
    workload: Workload,
    seed: int = 0,
    morph: Optional[MorphConfig] = None,
):
    """Instantiate the system under test for a scheme name."""
    if scheme in SCHEME_BUILDERS:
        return SCHEME_BUILDERS[scheme](config, workload, seed, morph)
    if scheme.startswith("("):
        return CmpSystem(config, static_label=scheme)
    raise ValueError(
        f"unknown scheme {scheme!r}: expected {sorted(SCHEME_BUILDERS)} or a "
        "static '(x:y:z)' label"
    )


def run_scheme(
    scheme: str,
    workload: Workload,
    config: MachineConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
    accesses_per_core: Optional[int] = None,
    warmup_epochs: int = 1,
    morph: Optional[MorphConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_path=None,
    checkpoint_every: int = 5,
    resume: bool = False,
    engine: str = "event",
    trace_path=None,
    tracer=None,
) -> RunResult:
    """Build the scheme's system and simulate the workload on it.

    ``fault_plan``, ``checkpoint_path``, ``checkpoint_every``, ``resume``
    and ``engine`` pass straight through to
    :func:`repro.sim.engine.simulate`.  ``trace_path`` records the run as a
    JSONL trace (see :mod:`repro.obs.trace`); pass an existing ``tracer``
    instead to keep it open (ring-buffer inspection) — the two are mutually
    exclusive and the path-owned recorder is closed before returning.
    """
    if trace_path is not None and tracer is not None:
        raise ValueError("pass either trace_path or tracer, not both")
    system = build_system(scheme, config, workload, seed=seed, morph=morph)
    owned = TraceRecorder(trace_path) if trace_path is not None else None
    try:
        result = simulate(
            system,
            workload,
            config,
            seed=seed,
            epochs=epochs,
            accesses_per_core=accesses_per_core,
            warmup_epochs=warmup_epochs,
            fault_plan=fault_plan,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume=resume,
            engine=engine,
            tracer=owned if owned is not None else tracer,
        )
    finally:
        if owned is not None:
            owned.close()
    result.scheme_name = scheme
    return result


_ALONE_CACHE: Dict[tuple, float] = {}


def alone_ipc_cached(
    benchmark_name: str,
    config: MachineConfig,
    seed: int = 0,
    epochs: int = 2,
) -> bool:
    """Whether :func:`alone_ipc` for these parameters would be a cache hit."""
    return (benchmark_name, config, seed, epochs) in _ALONE_CACHE


def seed_alone_cache(
    benchmark_name: str,
    config: MachineConfig,
    seed: int,
    epochs: int,
    ipc: float,
) -> None:
    """Populate the alone-run cache with an externally computed IPC.

    This is the bridge for :func:`repro.sim.parallel.prime_alone_ipcs`:
    worker processes each have their *own* copy of ``_ALONE_CACHE``, so the
    parent seeds its cache from worker results rather than relying on any
    cross-process mutation.  The value must come from the same deterministic
    run :func:`alone_ipc` would perform (alone workload on the all-shared
    baseline) or downstream speedup metrics will silently shift.
    """
    _ALONE_CACHE[(benchmark_name, config, seed, epochs)] = ipc


def alone_ipc(
    benchmark_name: str,
    config: MachineConfig,
    seed: int = 0,
    epochs: int = 2,
) -> float:
    """Mean IPC of one benchmark running alone on the all-shared baseline."""
    key = (benchmark_name, config, seed, epochs)
    if key not in _ALONE_CACHE:
        workload = Workload.alone(benchmark_name, cores=config.cores)
        result = run_scheme("(16:1:1)", workload, config, seed=seed, epochs=epochs)
        _ALONE_CACHE[key] = result.mean_ipcs()[0]
    return _ALONE_CACHE[key]


def alone_ipcs(
    benchmark_names: Sequence[str],
    config: MachineConfig,
    seed: int = 0,
    epochs: int = 2,
    jobs: Optional[int] = None,
) -> List[float]:
    """Alone-run IPC for each benchmark, in the given (core) order.

    With ``jobs`` (or ``REPRO_JOBS``) > 1 the missing runs are computed in
    the supervised worker pool via
    :func:`repro.sim.parallel.prime_alone_ipcs` — any runs that complete
    before a failure still land in the cache, so a retried call only
    recomputes the failed benchmark.
    """
    from repro.sim.parallel import prime_alone_ipcs, resolve_jobs

    if resolve_jobs(jobs) > 1:
        primed = prime_alone_ipcs(benchmark_names, config, seed=seed,
                                  epochs=epochs, jobs=jobs)
        return [primed[name] for name in benchmark_names]
    return [alone_ipc(name, config, seed=seed, epochs=epochs)
            for name in benchmark_names]
