"""Figure 13: MorphCache versus static topologies on the 12 SPEC mixes.

Regenerates the figure's bars: per-mix mean throughput of four static
topologies and MorphCache, normalised to the all-shared (16:1:1) baseline.
The paper reports MorphCache gaining on average +29.9 % over the baseline
and winning on every mix, with mixes dominated by large-ACF applications
(1-3, 6-7, 10) gaining least.  On this substrate the adaptive behaviour
reproduces (MorphCache tracks the best static per mix) but the absolute
margins are smaller — see EXPERIMENTS.md.
"""

from benchmarks.common import (
    STATICS,
    format_rows,
    geometric_mean,
    mix_workloads,
    normalized,
    report,
    run,
)

SCHEMES = STATICS + ["morphcache"]


def _run_all():
    table = {}
    for workload in mix_workloads():
        results = {scheme: run(scheme, workload) for scheme in SCHEMES}
        table[workload.name] = normalized(results)
    return table


def test_fig13_multiprogrammed(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = []
    for mix_name, values in table.items():
        rows.append([mix_name] + [f"{values[s]:.3f}" for s in SCHEMES])
    means = {s: geometric_mean([v[s] for v in table.values()])
             for s in SCHEMES}
    rows.append(["geomean"] + [f"{means[s]:.3f}" for s in SCHEMES])
    report("fig13_multiprogrammed",
           "Figure 13: throughput normalised to the shared (16:1:1) "
           "baseline\n(paper: MorphCache +29.9% avg over baseline)\n"
           + format_rows(["mix"] + SCHEMES, rows))

    morph = means["morphcache"]
    # Shape: MorphCache at worst marginally below the baseline on average,
    # and never collapses on any single mix.
    assert morph > 0.95
    assert all(values["morphcache"] > 0.85 for values in table.values())
    # MorphCache must be competitive with the best static on average (the
    # adaptivity claim): within 5 % of the best per-mix static geomean.
    best_static = geometric_mean(
        [max(v[s] for s in STATICS) for v in table.values()]
    )
    assert morph > best_static * 0.93
