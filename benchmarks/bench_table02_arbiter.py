"""Tables 1 and 2: segmented-bus arbiter area and delay.

Regenerates the synthesis-result table from the analytic timing model and
the Figure 12 floorplan, and cross-checks the behavioural arbiter tree
against the 2-cycle-grant/1-cycle-transfer protocol those delays imply.
"""

import pytest

from benchmarks.common import report
from repro.interconnect import ArbiterTimingModel, ArbiterTree, Floorplan


def _build():
    model = ArbiterTimingModel()
    plan = Floorplan()
    tree = ArbiterTree(16)
    tree.configure_groups([tuple(range(0, 8)), tuple(range(8, 16))])
    transactions = tree.simulate_transactions({0: 0, 8: 0})
    return model, plan, transactions


def test_table02_arbiter(benchmark):
    model, plan, transactions = benchmark.pedantic(_build, rounds=1,
                                                   iterations=1)
    geometry = (f"floorplan-derived wire paths: "
                f"L2 {plan.l2_max_wire_mm():.2f} mm "
                f"(paper-implied {0.31 / 0.038:.2f} mm), "
                f"L3 {plan.l3_max_wire_mm():.2f} mm "
                f"(paper-implied {0.40 / 0.038:.2f} mm)")
    report("table02_arbiter",
           model.format_table2() + "\n\n" + geometry + "\n\n"
           f"behavioural check: parallel transactions in disjoint domains "
           f"complete at bus cycle {max(t for _, t in transactions.values())} "
           "(grant at +2, transfer at +3, as in Section 3.2)")

    l2, l3 = model.l2_bus(), model.l3_bus()
    assert l2.total_area_um2 == pytest.approx(160.5, abs=0.1)
    assert l3.total_area_um2 == pytest.approx(343.9, abs=0.1)
    assert model.max_frequency_ghz() == pytest.approx(1.12, abs=0.01)
    assert model.transaction_cpu_cycles() == 15
    assert model.transaction_cpu_cycles(pipelined=True) == 10
    # Both halves of the chip complete their transfer in parallel at t=3.
    assert all(done == (2, 3) for done in transactions.values())
