"""Shared infrastructure for the per-figure/per-table benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
``small`` scale preset (1/32 machine, short epochs) and writes its output to
``benchmarks/results/<name>.txt`` in the same rows/series layout the paper
uses.  Absolute numbers differ from the paper (different substrate — see
EXPERIMENTS.md); the benchmarks assert only coarse *shape* properties so a
regression that inverts a headline comparison fails loudly while normal
statistical wobble does not.

Scheme runs are cached per (scheme, workload, seed) for the lifetime of the
pytest session: Figures 13, 14, 15 and 17 share the same static-topology
runs, which keeps the whole suite tractable.
"""

from __future__ import annotations

import math
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SMALL, MachineConfig, MorphConfig
from repro.sim.engine import RunResult, simulate
from repro.sim.experiment import build_system
from repro.sim.parallel import RunSpec, resolve_jobs
from repro.sim.supervisor import SweepPolicy, run_supervised
from repro.sim.workload import Workload
from repro.workloads import MIXES, PARSEC_BENCHMARKS

#: The machine every benchmark runs on.
BENCH_CONFIG: MachineConfig = SMALL.with_(
    accesses_per_core_per_epoch=2000, epochs=3
)

#: Epochs recorded per run (after 1 warm-up epoch).
EPOCHS = BENCH_CONFIG.epochs

SEED = 2011  # the paper's publication year, for flavour

#: The five static configurations of Figures 2/13/16.
STATICS = ["(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)", "(1:16:1)"]
BASELINE = "(16:1:1)"

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_RUN_CACHE: Dict[Tuple, RunResult] = {}
_SYSTEM_CACHE: Dict[Tuple, object] = {}


def run(scheme: str, workload: Workload, epochs: Optional[int] = None,
        seed: int = SEED, morph: Optional[MorphConfig] = None,
        config: Optional[MachineConfig] = None,
        keep_system: bool = False) -> RunResult:
    """Run (or fetch from cache) one scheme on one workload."""
    config = config or BENCH_CONFIG
    key = (scheme, workload.name, seed, epochs, morph, config)
    if key not in _RUN_CACHE:
        system = build_system(scheme, config, workload, seed=seed, morph=morph)
        result = simulate(system, workload, config, seed=seed, epochs=epochs)
        result.scheme_name = scheme
        _RUN_CACHE[key] = result
        if keep_system:
            _SYSTEM_CACHE[key] = system
    return _RUN_CACHE[key]


def system_for(scheme: str, workload: Workload, epochs: Optional[int] = None,
               seed: int = SEED, morph: Optional[MorphConfig] = None,
               config: Optional[MachineConfig] = None):
    """The system object of a cached run (for controller statistics)."""
    config = config or BENCH_CONFIG
    key = (scheme, workload.name, seed, epochs, morph, config)
    if key not in _SYSTEM_CACHE:
        run(scheme, workload, epochs=epochs, seed=seed, morph=morph,
            config=config, keep_system=True)
    return _SYSTEM_CACHE[key]


def run_batch(pairs: Sequence[Tuple[str, Workload]],
              epochs: Optional[int] = None, seed: int = SEED,
              morph: Optional[MorphConfig] = None,
              config: Optional[MachineConfig] = None,
              jobs: Optional[int] = None,
              run_timeout: Optional[float] = None,
              retries: int = 0) -> List[RunResult]:
    """Run many (scheme, workload) pairs, optionally across processes.

    Worker count comes from ``jobs``, else the ``REPRO_JOBS`` environment
    variable, else 1 — with one worker this is exactly a loop over
    :func:`run`.  Cached runs are reused; fresh results land in the same
    session cache, so a parallel warm-up benefits every later :func:`run`
    call.  Results come back in the order of ``pairs``.

    The pool path runs under the sweep supervisor
    (:func:`repro.sim.supervisor.run_supervised`): ``run_timeout`` kills
    hung workers, ``retries`` re-attempts failures (bit-identical — the
    run seed is reused), and every run that *did* complete is cached
    before the first unrecoverable failure is re-raised, so a retried
    batch only recomputes the runs that actually failed.
    """
    config = config or BENCH_CONFIG
    keys = [(scheme, workload.name, seed, epochs, morph, config)
            for scheme, workload in pairs]
    missing = [i for i, key in enumerate(keys) if key not in _RUN_CACHE]
    if missing and resolve_jobs(jobs) > 1:
        specs = [RunSpec(scheme=pairs[i][0], workload=pairs[i][1],
                         config=config, seed=seed, epochs=epochs, morph=morph)
                 for i in missing]
        policy = SweepPolicy(run_timeout=run_timeout, retries=retries)
        report = run_supervised(specs, jobs=jobs, policy=policy)
        for i, result in zip(missing, report.results):
            if result is not None:  # salvage completions before raising
                _RUN_CACHE[keys[i]] = result
        report.raise_first()
    return [run(scheme, workload, epochs=epochs, seed=seed, morph=morph,
                config=config)
            for scheme, workload in pairs]


def mix_workloads() -> List[Workload]:
    """All 12 Table 5 mixes as workloads."""
    return [Workload.from_mix(mix) for mix in MIXES]


def parsec_workloads() -> List[Workload]:
    """All 12 PARSEC benchmarks as 16-thread workloads."""
    return [Workload.from_parsec(name) for name in PARSEC_BENCHMARKS]


def normalized(results: Dict[str, RunResult], baseline: str = BASELINE) -> Dict[str, float]:
    """Mean throughput of each scheme normalised to the baseline scheme."""
    base = results[baseline].mean_throughput
    return {scheme: result.mean_throughput / base
            for scheme, result in results.items()}


def geometric_mean(values: List[float]) -> float:
    """Geometric mean computed in the log domain.

    The naive running product under/overflows for long value lists (and
    loses precision long before that); summing logs is exact to within one
    rounding per element.  The empty list keeps returning 0.0.
    """
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def report(name: str, text: str) -> None:
    """Write a result table to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}\n{text}")


def format_rows(header: List[str], rows: List[List[str]]) -> str:
    """Simple fixed-width table formatting."""
    table = [header] + rows
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[col])
                               for col, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[col]
                                   for col in range(len(header))))
    return "\n".join(lines)
