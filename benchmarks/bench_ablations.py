"""Ablations of MorphCache's design choices (DESIGN.md §4).

Four variants against the default controller on a mixed workload sample:

- *split-aggressive* conflict policy (the paper's §2.4 alternative);
- *no polluter veto* — streaming cores may be chosen as merge donors;
- *no hysteresis* — merged groups may split immediately and split pairs may
  re-merge immediately (reconfiguration churn unbounded);
- *modulo hash* ACFVs instead of XOR-fold.

The interesting outputs are throughput deltas and the reconfiguration
counts (hysteresis exists to bound churn, so removing it must increase the
count).
"""

from benchmarks.common import (
    format_rows,
    geometric_mean,
    report,
    run,
    system_for,
)
from repro.config import MorphConfig
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

MIX_SAMPLE = ["MIX 05", "MIX 08", "MIX 11"]
EPOCHS = 4

VARIANTS = {
    "default": MorphConfig(),
    "split-aggressive": MorphConfig(conflict_policy="split"),
    "no polluter veto": MorphConfig(polluter_veto=False),
    "no hysteresis": MorphConfig(hysteresis=False),
    "modulo hash": MorphConfig(hash_name="modulo"),
}


def _collect():
    table = {}
    churn = {}
    for mix_name in MIX_SAMPLE:
        workload = Workload.from_mix(mix_by_name(mix_name))
        base = run("(16:1:1)", workload, epochs=EPOCHS)
        row = {}
        for variant, morph in VARIANTS.items():
            result = run("morphcache", workload, epochs=EPOCHS, morph=morph,
                         keep_system=True)
            system = system_for("morphcache", workload, epochs=EPOCHS,
                                morph=morph)
            row[variant] = result.mean_throughput / base.mean_throughput
            churn.setdefault(variant, []).append(
                system.controller.reconfigurations
            )
        table[mix_name] = row
    return table, churn


def test_ablations(benchmark):
    table, churn = benchmark.pedantic(_collect, rounds=1, iterations=1)
    variants = list(VARIANTS)
    rows = [[name] + [f"{values[v]:.3f}" for v in variants]
            for name, values in table.items()]
    means = {v: geometric_mean([row[v] for row in table.values()])
             for v in variants}
    rows.append(["geomean"] + [f"{means[v]:.3f}" for v in variants])
    churn_means = {v: sum(c) / len(c) for v, c in churn.items()}
    report("ablations",
           "Ablations: MorphCache variants, normalised to (16:1:1)\n"
           + format_rows(["mix"] + variants, rows)
           + "\nmean reconfigurations per run: "
           + ", ".join(f"{v}={churn_means[v]:.0f}" for v in variants))

    # Every variant must function.
    assert all(value > 0.7 for row in table.values() for value in row.values())
    # Hysteresis bounds churn: removing it must not reduce reconfigurations.
    assert churn_means["no hysteresis"] >= churn_means["default"]
