"""Table 4: per-benchmark active cache footprints.

Measures every SPEC CPU 2006 model on a single core with private slices and
every PARSEC model as 16 threads with per-core slices (the paper's
collection methodology), and reports measured mean ACF and temporal sigma
against the table's targets.  A subset of benchmarks is used per suite to
keep runtime bounded; the sample covers all four SPEC classes.
"""

import numpy as np

from benchmarks.common import BENCH_CONFIG, format_rows, report
from repro.caches.hierarchy import CacheHierarchy
from repro.core.acfv import AcfvBank
from repro.sim.workload import Workload
from repro.workloads import parsec_benchmark, spec_benchmark

SPEC_SAMPLE = [
    "libquantum", "GemsFDTD",          # class 0
    "hmmer", "gromacs", "mcf",         # class 1
    "cactusADM", "bzip2", "leslie3d",  # class 2
    "gcc", "h264ref", "xalancbmk",     # class 3
]
PARSEC_SAMPLE = ["blackscholes", "dedup", "ferret", "freqmine", "streamcluster"]
EPOCHS = 6
ACCESSES = 2500


def _measure(workload, seed=7):
    """Per-core (mean u2, sigma_t2, mean u3, sigma_t3) over epochs."""
    config = BENCH_CONFIG
    bank = AcfvBank(config.cores, max(32, config.l2_slice.lines // 2),
                    max(32, config.l3_slice.lines // 2))
    hierarchy = CacheHierarchy(config, observer=bank)
    threads = workload.build_threads(config, seed=seed)
    active = [c for c, t in enumerate(threads) if t is not None]
    series = {c: ([], []) for c in active}
    for _ in range(EPOCHS):
        traces = {c: threads[c].generate(ACCESSES) for c in active}
        for i in range(ACCESSES):
            for c in active:
                trace = traces[c]
                hierarchy.access(c, int(trace.lines[i]), bool(trace.writes[i]))
        for c in active:
            series[c][0].append(
                bank.group_utilization("l2", (c,), config.l2_slice.lines) / 100
            )
            series[c][1].append(
                bank.group_utilization("l3", (c,), config.l3_slice.lines) / 100
            )
        bank.reset_all()
    return series


def _spec_rows():
    rows = []
    errors = []
    for name in SPEC_SAMPLE:
        bench = spec_benchmark(name)
        series = _measure(Workload.alone(name))
        u2_series, u3_series = series[0]
        u2, s2 = float(np.mean(u2_series)), float(np.std(u2_series))
        u3, s3 = float(np.mean(u3_series)), float(np.std(u3_series))
        model = bench.model
        errors.append(abs(u2 - model.l2_acf))
        errors.append(abs(u3 - model.l3_acf))
        rows.append([name, f"{u2:.2f}", f"{model.l2_acf:.2f}", f"{s2:.2f}",
                     f"{model.l2_sigma_t:.2f}", f"{u3:.2f}",
                     f"{model.l3_acf:.2f}", f"{s3:.2f}",
                     f"{model.l3_sigma_t:.2f}"])
    return rows, float(np.mean(errors))


def _parsec_rows():
    rows = []
    for name in PARSEC_SAMPLE:
        bench = parsec_benchmark(name)
        series = _measure(Workload.from_parsec(name))
        u2_means = [float(np.mean(series[c][0])) for c in series]
        u3_means = [float(np.mean(series[c][1])) for c in series]
        rows.append([
            name,
            f"{np.mean(u2_means):.2f}", f"{bench.model.l2_acf:.2f}",
            f"{np.std(u2_means):.2f}", f"{bench.l2_sigma_s:.2f}",
            f"{np.mean(u3_means):.2f}", f"{bench.model.l3_acf:.2f}",
            f"{np.std(u3_means):.2f}", f"{bench.l3_sigma_s:.2f}",
        ])
    return rows


def test_table04_acf(benchmark):
    def produce():
        spec_rows, spec_error = _spec_rows()
        parsec_rows = _parsec_rows()
        return spec_rows, spec_error, parsec_rows

    spec_rows, spec_error, parsec_rows = benchmark.pedantic(
        produce, rounds=1, iterations=1
    )
    spec_table = format_rows(
        ["benchmark", "L2", "tgt", "s_t", "tgt", "L3", "tgt", "s_t", "tgt"],
        spec_rows,
    )
    parsec_table = format_rows(
        ["benchmark", "L2", "tgt", "s_s", "tgt", "L3", "tgt", "s_s", "tgt"],
        parsec_rows,
    )
    report("table04_acf",
           "Table 4 (SPEC sample): measured vs target ACF\n"
           f"{spec_table}\nmean abs ACF error: {spec_error:.3f}\n\n"
           "Table 4 (PARSEC sample): per-thread means and spatial sigma\n"
           f"{parsec_table}")

    # Calibration shape: mean absolute error of the measured footprints is
    # bounded, and class contrasts survive (libquantum < cactusADM at L2).
    assert spec_error < 0.22
    by_name = {row[0]: row for row in spec_rows}
    assert float(by_name["libquantum"][1]) < float(by_name["cactusADM"][1])
    assert float(by_name["libquantum"][5]) < float(by_name["gromacs"][5])
