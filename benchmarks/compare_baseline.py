"""Compare a freshly measured BENCH_*.json against the committed baseline.

Usage::

    python benchmarks/compare_baseline.py BASELINE.json FRESH.json \
        [--threshold FRACTION] [--gate PATH ...]

Walks both JSON trees and compares every shared numeric leaf that is a
throughput measurement (anything except metadata keys).  When a fresh
number falls more than the threshold (default ``THRESHOLD``) below the
committed baseline it emits a GitHub Actions ``::warning::`` annotation so
the regression is visible on the PR without gating it — shared runners are
too noisy for a hard fail on raw throughput.

``--gate PATH`` (repeatable, dotted leaf path such as ``speedup.merged``)
promotes specific leaves to a **ratchet**: a gated leaf that regresses
beyond the threshold — or is missing from the fresh measurement entirely —
is an ``::error::`` and the script exits 1.  Gates are meant for
*ratios* (batch-vs-event speedups), which divide out runner speed and are
stable where absolute accesses/second are not; CI gates the batch engine's
merged/shared speedups this way so the slice-group kernel cannot silently
lose its advantage.  Without ``--gate`` the script always exits 0.  The
trace-overhead smoke job passes ``--threshold 0.02``: the observability
layer's contract is that the disabled path stays within 2% of the
committed hot-path baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Fractional drop below baseline that trips a warning annotation.
THRESHOLD = 0.20

#: Top-level keys that describe the measurement rather than report one.
#: ``overhead_fraction`` is derived and lower-is-better, so the
#: higher-is-better throughput comparison below must not touch it.
METADATA_KEYS = {"config", "workload", "seed", "epochs_timed", "passes",
                 "unit", "before", "overhead_fraction"}


def _leaves(tree, prefix=""):
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from _leaves(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        yield prefix, float(tree)


def compare(baseline: dict, fresh: dict, label: str,
            threshold: float = THRESHOLD) -> list:
    """Paths whose fresh value regressed >threshold below the baseline."""
    fresh_map = dict(_leaves(fresh))
    regressions = []
    for path, base_value in _leaves(baseline):
        if path.split(".", 1)[0] in METADATA_KEYS or base_value <= 0:
            continue
        got = fresh_map.get(path)
        if got is not None and got < base_value * (1.0 - threshold):
            regressions.append((label, path, base_value, got))
    return regressions


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="compare_baseline", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=THRESHOLD,
                        metavar="FRACTION",
                        help="fractional drop below baseline that trips a "
                             f"warning (default {THRESHOLD})")
    parser.add_argument("--gate", action="append", default=[],
                        metavar="PATH",
                        help="dotted leaf path (e.g. speedup.merged) whose "
                             "regression beyond the threshold, or absence "
                             "from the fresh file, fails the run (exit 1); "
                             "repeatable")
    try:
        args = parser.parse_args(argv[1:])
    except SystemExit:
        return 2
    baseline_path, fresh_path = args.baseline, args.fresh
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping comparison")
        return 0
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    regressions = compare(baseline, fresh, baseline_path.stem,
                          threshold=args.threshold)
    gated = set(args.gate)
    failures = []
    for label, path, base_value, got in regressions:
        drop = 100.0 * (1.0 - got / base_value)
        severity = "error" if path in gated else "warning"
        print(f"::{severity} title=bench regression ({label})::"
              f"{path}: {got:.2f} vs committed {base_value:.2f} "
              f"(-{drop:.0f}%, threshold {args.threshold:.0%})")
        if path in gated:
            failures.append(path)
    base_map = dict(_leaves(baseline))
    fresh_map = dict(_leaves(fresh))
    for path in sorted(gated):
        # A gate over a leaf that vanished (renamed topology, dropped
        # section) must fail loudly, not silently stop ratcheting.
        if path not in base_map:
            print(f"::error title=bench gate::{path} not in committed "
                  f"baseline {baseline_path.name}")
            failures.append(path)
        elif path not in fresh_map:
            print(f"::error title=bench gate::{path} missing from fresh "
                  f"measurement {fresh_path.name}")
            failures.append(path)
    if not regressions and not failures:
        print(f"{baseline_path.name}: all measurements within "
              f"{args.threshold:.0%} of the committed baseline"
              + (f" (gated: {', '.join(sorted(gated))})" if gated else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
