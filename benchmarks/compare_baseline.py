"""Compare a freshly measured BENCH_*.json against the committed baseline.

Usage::

    python benchmarks/compare_baseline.py BASELINE.json FRESH.json

Walks both JSON trees and compares every shared numeric leaf that is a
throughput measurement (anything except metadata keys).  When a fresh
number falls more than ``THRESHOLD`` below the committed baseline it emits
a GitHub Actions ``::warning::`` annotation so the regression is visible on
the PR without gating it — shared runners are too noisy for a hard fail.
Always exits 0; the caller decides what (if anything) gates.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Fractional drop below baseline that trips a warning annotation.
THRESHOLD = 0.20

#: Top-level keys that describe the measurement rather than report one.
METADATA_KEYS = {"config", "workload", "seed", "epochs_timed", "passes",
                 "unit", "before"}


def _leaves(tree, prefix=""):
    if isinstance(tree, dict):
        for key, value in tree.items():
            yield from _leaves(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        yield prefix, float(tree)


def compare(baseline: dict, fresh: dict, label: str) -> list:
    """Paths whose fresh value regressed >THRESHOLD below the baseline."""
    fresh_map = dict(_leaves(fresh))
    regressions = []
    for path, base_value in _leaves(baseline):
        if path.split(".", 1)[0] in METADATA_KEYS or base_value <= 0:
            continue
        got = fresh_map.get(path)
        if got is not None and got < base_value * (1.0 - THRESHOLD):
            regressions.append((label, path, base_value, got))
    return regressions


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, fresh_path = pathlib.Path(argv[1]), pathlib.Path(argv[2])
    if not baseline_path.exists():
        print(f"no committed baseline at {baseline_path}; skipping comparison")
        return 0
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    regressions = compare(baseline, fresh, baseline_path.stem)
    for label, path, base_value, got in regressions:
        drop = 100.0 * (1.0 - got / base_value)
        print(f"::warning title=bench regression ({label})::"
              f"{path}: {got:.0f} vs committed {base_value:.0f} "
              f"(-{drop:.0f}%, threshold {THRESHOLD:.0%})")
    if not regressions:
        print(f"{baseline_path.name}: all measurements within "
              f"{THRESHOLD:.0%} of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
