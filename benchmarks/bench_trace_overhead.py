"""Trace-overhead benchmark: the observability layer must be free when off.

Times full ``simulate()`` runs (morphcache on MIX 01, the shared bench
config) three ways:

- ``off`` — no tracer, registry disabled: the default everyone pays;
- ``trace`` — a :class:`~repro.obs.trace.TraceRecorder` writing JSONL;
- ``trace+metrics`` — tracing plus the enabled metrics registry.

All trace/metrics hook sites sit on epoch (or coarser) boundaries, so the
*on* overhead should be a few percent and the *off* path should be
indistinguishable from a tree without the observability layer — the CI
``trace-overhead`` job checks the latter by re-running the hot-path
benchmark and comparing against the committed ``BENCH_hotpath.json`` at a
2% threshold.  Output goes to ``benchmarks/results/trace_overhead.txt``
and ``BENCH_trace.json`` at the repo root; the traced runs' results are
also asserted identical to the untraced run's (observation must not
perturb the simulation).
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time

from benchmarks.common import BENCH_CONFIG, SEED, format_rows, report
from repro.obs import REGISTRY
from repro.obs.trace import TraceRecorder
from repro.sim.engine import simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES

PASSES = 3  # runs per mode; best-of to shed scheduler noise

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_trace.json"


def _one_run(trace_path=None, metrics=False):
    """One full simulate() run; returns (seconds, mean_throughput)."""
    workload = Workload.from_mix(MIXES[0])
    system = build_system("morphcache", BENCH_CONFIG, workload, seed=SEED)
    tracer = TraceRecorder(trace_path) if trace_path is not None else None
    if metrics:
        REGISTRY.reset()
        REGISTRY.enable()
    try:
        start = time.perf_counter()
        result = simulate(system, workload, BENCH_CONFIG, seed=SEED,
                          tracer=tracer)
        elapsed = time.perf_counter() - start
    finally:
        if metrics:
            REGISTRY.disable()
        if tracer is not None:
            tracer.close()
    return elapsed, result.mean_throughput


def measure(trace=False, metrics=False):
    """Best-of-PASSES accesses/second for one mode (plus the run result)."""
    accesses = (BENCH_CONFIG.accesses_per_core_per_epoch * BENCH_CONFIG.cores
                * (BENCH_CONFIG.epochs + 1))  # +1 warmup epoch
    best = float("inf")
    throughput = None
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(PASSES):
            path = (pathlib.Path(tmp) / f"pass{i}.jsonl") if trace else None
            elapsed, run_throughput = _one_run(path, metrics)
            best = min(best, elapsed)
            throughput = run_throughput
    return accesses / best, throughput


def test_trace_overhead(benchmark):
    def all_modes():
        off, off_result = measure()
        traced, traced_result = measure(trace=True)
        full, full_result = measure(trace=True, metrics=True)
        # Observation must not perturb the simulation: identical results.
        assert traced_result == off_result
        assert full_result == off_result
        return {"off": off, "trace": traced, "trace+metrics": full}

    rates = benchmark.pedantic(all_modes, rounds=1, iterations=1)
    overhead = {mode: 1.0 - rates[mode] / rates["off"] for mode in rates}

    rows = [[mode, f"{rates[mode]:.0f}", f"{100 * overhead[mode]:+.1f}%"]
            for mode in rates]
    table = format_rows(["mode", "acc/s", "overhead vs off"], rows)
    report("trace_overhead",
           "Observability overhead: simulate() accesses/second by mode "
           "(morphcache, MIX 01, small preset, seed 2011, best of "
           f"{PASSES})\n{table}\n\n"
           "The off row is the default path; the CI trace-overhead job "
           "additionally holds it within 2% of the committed "
           "BENCH_hotpath.json baseline.")

    JSON_PATH.write_text(json.dumps({
        "config": "SMALL(accesses_per_core_per_epoch=2000, epochs=3)",
        "workload": "MIX 01",
        "seed": SEED,
        "passes": PASSES,
        "unit": "accesses/second",
        "after": rates,
        "overhead_fraction": overhead,
    }, indent=2) + "\n")

    # Epoch-boundary hooks only: tracing a run must never cost a large
    # fraction of it.  Loose floor (the job is non-gating; shared runners
    # are noisy) — the real 2% off-path check is the hot-path comparison.
    assert rates["trace"] >= 0.5 * rates["off"], rates
    assert rates["trace+metrics"] >= 0.5 * rates["off"], rates
