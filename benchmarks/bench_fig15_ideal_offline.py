"""Figure 15: MorphCache versus the ideal offline scheme.

The ideal scheme picks, for every epoch, the static configuration that
performs best in that epoch (impossible online).  The paper's claim — and
the one result that is fully substrate-independent — is that MorphCache
achieves ~97 % of the ideal scheme's throughput.
"""

from benchmarks.common import (
    BASELINE,
    STATICS,
    format_rows,
    geometric_mean,
    mix_workloads,
    report,
    run,
)
from repro.baselines import ideal_offline


def _compare():
    table = {}
    for workload in mix_workloads():
        statics = [run(label, workload) for label in STATICS]
        ideal = ideal_offline(statics)
        morph = run("morphcache", workload)
        base = next(r for r in statics if r.scheme_name == BASELINE)
        table[workload.name] = (
            morph.mean_throughput / base.mean_throughput,
            ideal.mean_throughput / base.mean_throughput,
            morph.mean_throughput / ideal.mean_throughput,
        )
    return table


def test_fig15_ideal_offline(benchmark):
    table = benchmark.pedantic(_compare, rounds=1, iterations=1)
    rows = [[name, f"{m:.3f}", f"{i:.3f}", f"{frac:.3f}"]
            for name, (m, i, frac) in table.items()]
    fraction = geometric_mean([frac for _, _, frac in table.values()])
    rows.append(["geomean", "", "", f"{fraction:.3f}"])
    report("fig15_ideal_offline",
           "Figure 15: MorphCache vs per-epoch-best static (ideal offline)\n"
           "(paper: MorphCache reaches ~97% of the ideal scheme)\n"
           + format_rows(["mix", "morph/base", "ideal/base", "morph/ideal"],
                         rows))

    # The headline claim: MorphCache within a few percent of the ideal.
    assert fraction > 0.90
    # The ideal is a pointwise maximum, so it dominates the baseline.
    assert all(i >= 1.0 - 1e-9 for _, i, _ in table.values())
