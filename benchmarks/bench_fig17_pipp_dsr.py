"""Figure 17: MorphCache versus PIPP and DSR extended to L2+L3.

PIPP pseudo-partitions a single shared cache at each level; DSR manages
per-core private caches with learned spill/receive roles.  The paper:
MorphCache +6.6 % over PIPP and +5.7 % over DSR on average, with MIX 04 and
MIX 08 (little ACF variation) the two mixes where the margin vanishes.
"""

from benchmarks.common import (
    format_rows,
    geometric_mean,
    mix_workloads,
    normalized,
    report,
    run,
)

SCHEMES = ["(16:1:1)", "pipp", "dsr", "morphcache"]


def _run_all():
    table = {}
    for workload in mix_workloads():
        results = {scheme: run(scheme, workload) for scheme in SCHEMES}
        table[workload.name] = normalized(results)
    return table


def test_fig17_pipp_dsr(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [[name] + [f"{values[s]:.3f}" for s in SCHEMES]
            for name, values in table.items()]
    means = {s: geometric_mean([v[s] for v in table.values()]) for s in SCHEMES}
    rows.append(["geomean"] + [f"{means[s]:.3f}" for s in SCHEMES])
    report("fig17_pipp_dsr",
           "Figure 17: PIPP and DSR vs MorphCache, normalised to (16:1:1)\n"
           "(paper: MorphCache +6.6% over PIPP, +5.7% over DSR)\n"
           + format_rows(["mix"] + SCHEMES, rows))

    # Shape: MorphCache competitive with both managed-cache baselines on
    # average (the paper's margins are single-digit percentages).
    assert means["morphcache"] > means["pipp"] * 0.93
    assert means["morphcache"] > means["dsr"] * 0.93
    # All schemes function: nothing collapses below 60 % of the baseline.
    for values in table.values():
        assert all(v > 0.6 for v in values.values())
