"""Section 5.4: sensitivity to cache sizes, associativity and core count.

The paper: doubling the L2 slice improves MorphCache's margin by +2.1 %,
doubling L3 by +1.8 %, doubling associativities brings nothing, and an
8-core machine loses 0.7 % of the benefit.  The comparable quantity here is
MorphCache's throughput normalised to the shared baseline under each
machine variant.
"""

from benchmarks.common import BENCH_CONFIG, SEED, format_rows, report
from repro.config import CacheGeometry
from repro.sim.experiment import run_scheme
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

MIX = "MIX 08"
EPOCHS = 3


def _variants():
    base = BENCH_CONFIG
    double_sets = lambda g: CacheGeometry(g.sets * 2, g.ways)
    double_ways = lambda g: CacheGeometry(g.sets, g.ways * 2)
    return {
        "base": base,
        "2x L2 size": base.with_(l2_slice=double_sets(base.l2_slice)),
        "2x L3 size": base.with_(l3_slice=double_sets(base.l3_slice)),
        "2x associativity": base.with_(l2_slice=double_ways(base.l2_slice),
                                       l3_slice=double_ways(base.l3_slice)),
        "8 cores": base.with_(cores=8),
    }


def _margin(config):
    mix = mix_by_name(MIX)
    if config.cores == 8:
        workload = Workload(name=f"{MIX} (8 cores)",
                            models=tuple(b.model for b in mix.benchmarks[:8]))
    else:
        workload = Workload.from_mix(mix)
    shared_label = f"({config.cores}:1:1)"
    base = run_scheme(shared_label, workload, config, seed=SEED, epochs=EPOCHS)
    morph = run_scheme("morphcache", workload, config, seed=SEED, epochs=EPOCHS)
    return morph.mean_throughput / base.mean_throughput


def _collect():
    return {name: _margin(config) for name, config in _variants().items()}


def test_sec54_sensitivity(benchmark):
    margins = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = [[name, f"{value:.3f}", f"{value - margins['base']:+.3f}"]
            for name, value in margins.items()]
    report("sec54_sensitivity",
           f"Section 5.4: MorphCache margin over the shared baseline on "
           f"{MIX} under machine variants\n(paper: +2.1% with 2x L2, +1.8% "
           "with 2x L3, ~0 with 2x associativity, -0.7% at 8 cores)\n"
           + format_rows(["variant", "morph/shared", "delta vs base"], rows))

    # Shape: every variant runs and stays within a sane band; doubling
    # associativity is not a large win (the paper's observation).
    assert all(0.7 < value < 1.5 for value in margins.values())
    assert abs(margins["2x associativity"] - margins["base"]) < 0.25
