"""Section 5.5: relaxed sharing policies.

The paper evaluates two relaxations of the buddy policy: allowing groups
whose size is not a power of two (+3.6 % throughput) and additionally
allowing non-neighbouring slices to share (-7.1 %, because distant-slice
latency dominates).  Here the non-neighbour variant also pays the distance
penalty through the larger physical spans its groups create.
"""

from benchmarks.common import format_rows, geometric_mean, report, run
from repro.config import MorphConfig
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

MIX_SAMPLE = ["MIX 05", "MIX 08", "MIX 11"]
EPOCHS = 4

POLICIES = {
    "default (buddy)": MorphConfig(),
    "arbitrary sizes": MorphConfig(allow_arbitrary_sizes=True),
    "non-neighbours": MorphConfig(allow_arbitrary_sizes=True,
                                  allow_non_neighbors=True),
}


def _collect():
    table = {}
    for name in MIX_SAMPLE:
        workload = Workload.from_mix(mix_by_name(name))
        base = run("(16:1:1)", workload, epochs=EPOCHS)
        table[name] = {
            policy: run("morphcache", workload, epochs=EPOCHS,
                        morph=morph).mean_throughput / base.mean_throughput
            for policy, morph in POLICIES.items()
        }
    return table


def test_sec55_extensions(benchmark):
    table = benchmark.pedantic(_collect, rounds=1, iterations=1)
    policies = list(POLICIES)
    rows = [[name] + [f"{values[p]:.3f}" for p in policies]
            for name, values in table.items()]
    means = {p: geometric_mean([v[p] for v in table.values()])
             for p in policies}
    rows.append(["geomean"] + [f"{means[p]:.3f}" for p in policies])
    report("sec55_extensions",
           "Section 5.5: relaxed-topology policies, normalised to (16:1:1)\n"
           "(paper: arbitrary sizes +3.6% over default; non-neighbour "
           "sharing -7.1%)\n" + format_rows(["mix"] + policies, rows))

    # Shape: all policies run; the non-neighbour policy does not beat the
    # arbitrary-size policy (distance costs, the paper's conclusion).
    assert all(v > 0.7 for values in table.values() for v in values.values())
    assert means["non-neighbours"] <= means["arbitrary sizes"] + 0.05
