"""Figure 16: MorphCache versus static topologies on the PARSEC suite.

Each benchmark runs as 16 threads sharing an address space; performance is
mean throughput normalised to the shared baseline.  The paper reports
+25.6 % average over the baseline and singles out facesim, ferret, freqmine
and x264 (high spatial ACF variance) as the biggest winners.
"""

from benchmarks.common import (
    STATICS,
    format_rows,
    geometric_mean,
    normalized,
    parsec_workloads,
    report,
    run,
)

SCHEMES = STATICS + ["morphcache"]


def _run_all():
    table = {}
    for workload in parsec_workloads():
        results = {scheme: run(scheme, workload) for scheme in SCHEMES}
        table[workload.name] = normalized(results)
    return table


def test_fig16_multithreaded(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    rows = [[name] + [f"{values[s]:.3f}" for s in SCHEMES]
            for name, values in table.items()]
    means = {s: geometric_mean([v[s] for v in table.values()]) for s in SCHEMES}
    rows.append(["geomean"] + [f"{means[s]:.3f}" for s in SCHEMES])
    report("fig16_multithreaded",
           "Figure 16: PARSEC throughput normalised to (16:1:1)\n"
           "(paper: MorphCache +25.6% avg; facesim/ferret/freqmine/x264 "
           "gain most)\n" + format_rows(["benchmark"] + SCHEMES, rows))

    # Shape: under the paper's flat-latency accounting for statics, the
    # all-shared static pools every thread's data for free, so it dominates
    # on this substrate (the paper's +25.6 % margin does not carry over —
    # see EXPERIMENTS.md).  The reproducible claims: MorphCache is at least
    # as good as the private configuration it starts from (its sharing
    # merges pay for themselves) and never collapses on any application.
    morph = means["morphcache"]
    assert morph > means["(1:1:16)"] - 0.06
    assert morph > 0.75
    assert all(values["morphcache"] > 0.6 for values in table.values())
