"""Hot-path microbenchmark: raw accesses/second through ``run_epoch``.

Times the engine inner loop (``repro.sim.engine.run_epoch``) on MIX 01
under three static topologies that exercise the three dispatch paths of
the hierarchy:

- ``private`` ``(1:1:16)`` — every L2/L3 search order is a singleton, so
  the monolithic ``_access_private`` fast path handles every access;
- ``merged`` ``(4:4:1)`` — small multi-slice search groups, the general
  lookup path with per-level binding fast slices;
- ``shared`` ``(16:1:1)`` — 16-way search groups, the fully general path.

``PRE_PR`` holds the same measurement taken on the tree immediately before
the hot-path rewrite (commit 6bd6035, this machine) — the denominator for
the recorded speedups.  Output goes to ``benchmarks/results/hotpath.txt``
and, machine-readably, ``BENCH_hotpath.json`` at the repo root.

The timed region is purely the access pipeline: trace generation, timer
construction and ``end_epoch`` happen outside the clock.
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.common import BENCH_CONFIG, SEED, format_rows, report
from repro.cpu.cmp import CmpSystem
from repro.cpu.core_model import CoreTimingModel
from repro.sim.engine import run_epoch
from repro.sim.workload import Workload
from repro.workloads import MIXES

TOPOLOGIES = {"private": "(1:1:16)", "merged": "(4:4:1)", "shared": "(16:1:1)"}
EPOCHS = 4  # epoch 0 doubles as cache warm-up; all epochs are timed

#: Accesses/second on the pre-rewrite tree (same config, seed and machine).
PRE_PR = {
    "private": 80466.79,
    "merged": 32448.38,
    "shared": 21281.51,
}

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def measure(label: str) -> float:
    """Accesses/second for one topology over EPOCHS epochs of MIX 01."""
    workload = Workload.from_mix(MIXES[0])
    system = CmpSystem(BENCH_CONFIG, static_label=label)
    threads = workload.build_threads(BENCH_CONFIG, seed=SEED)
    active = [core for core, thread in enumerate(threads) if thread is not None]
    n = BENCH_CONFIG.accesses_per_core_per_epoch
    total_accesses = 0
    total_time = 0.0
    for _ in range(EPOCHS):
        traces = {core: threads[core].generate(n) for core in active}
        timers = {core: CoreTimingModel(BENCH_CONFIG.issue_width,
                                        memory_latency=BENCH_CONFIG.latency.memory)
                  for core in active}
        start = time.perf_counter()
        run_epoch(system, traces, timers, n)
        total_time += time.perf_counter() - start
        total_accesses += n * len(active)
        system.end_epoch()
    return total_accesses / total_time


def test_hotpath(benchmark):
    after = benchmark.pedantic(
        lambda: {name: measure(label) for name, label in TOPOLOGIES.items()},
        rounds=1, iterations=1,
    )
    speedups = {name: after[name] / PRE_PR[name] for name in TOPOLOGIES}

    rows = [[name, TOPOLOGIES[name], f"{PRE_PR[name]:.0f}",
             f"{after[name]:.0f}", f"{speedups[name]:.2f}x"]
            for name in TOPOLOGIES]
    table = format_rows(
        ["path", "topology", "before acc/s", "after acc/s", "speedup"], rows)
    report("hotpath",
           "Hot-path rewrite: accesses/second through run_epoch "
           "(MIX 01, small preset, seed 2011)\n"
           f"{table}\n\n"
           "'before' measured on the pre-rewrite tree on the same machine.")

    JSON_PATH.write_text(json.dumps({
        "config": "SMALL(accesses_per_core_per_epoch=2000, epochs=3)",
        "workload": "MIX 01",
        "seed": SEED,
        "epochs_timed": EPOCHS,
        "unit": "accesses/second",
        "before": PRE_PR,
        "after": after,
        "speedup": speedups,
    }, indent=2) + "\n")

    # The tentpole target is >=3x on the private topology; 2x here is the
    # loud-regression floor so a noisy/loaded machine doesn't flake the
    # (non-gating) CI smoke run while a real regression still fails.
    assert speedups["private"] >= 2.0, speedups
    assert all(s >= 1.5 for s in speedups.values()), speedups
