"""Section 2.4 statistics: reconfiguration counts and asymmetric fractions.

The paper reports 5,248-12,176 reconfigurations (avg 9,654) per
multiprogrammed workload and 263-1,043 (avg 856) per multithreaded one,
with 39 % / 54 % of reconfigurations landing in asymmetric configurations.
Counts scale with the number of epochs simulated (the paper runs orders of
magnitude more), so the comparable quantities here are the *ratio* between
multiprogrammed and multithreaded activity and the asymmetric fractions.
"""

from benchmarks.common import format_rows, report, run, system_for
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

MIX_SAMPLE = ["MIX 02", "MIX 08", "MIX 11"]
PARSEC_SAMPLE = ["dedup", "freqmine", "swaptions"]
EPOCHS = 6


def _collect():
    stats = {}
    for name in MIX_SAMPLE:
        workload = Workload.from_mix(mix_by_name(name))
        run("morphcache", workload, epochs=EPOCHS, keep_system=True)
        controller = system_for("morphcache", workload, epochs=EPOCHS).controller
        stats[name] = ("multiprogrammed", controller.reconfigurations,
                       controller.asymmetric_fraction)
    for name in PARSEC_SAMPLE:
        workload = Workload.from_parsec(name)
        run("morphcache", workload, epochs=EPOCHS, keep_system=True)
        controller = system_for("morphcache", workload, epochs=EPOCHS).controller
        stats[name] = ("multithreaded", controller.reconfigurations,
                       controller.asymmetric_fraction)
    return stats


def test_sec24_reconfig_stats(benchmark):
    stats = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = [[name, kind, str(count), f"{frac:.2f}"]
            for name, (kind, count, frac) in stats.items()]
    multiprog = [c for kind, c, _ in stats.values() if kind == "multiprogrammed"]
    multithread = [c for kind, c, _ in stats.values() if kind == "multithreaded"]
    report("sec24_reconfig_stats",
           "Section 2.4: reconfiguration activity per workload "
           f"({EPOCHS} epochs)\n(paper, full-length runs: multiprogrammed "
           "avg 9,654 with 39% asymmetric; multithreaded avg 856 with 54% "
           "asymmetric)\n"
           + format_rows(["workload", "kind", "reconfigs", "asym frac"], rows)
           + f"\nmultiprogrammed avg {sum(multiprog) / len(multiprog):.1f}, "
             f"multithreaded avg {sum(multithread) / len(multithread):.1f}")

    # Shape: reconfiguration happens, multiprogrammed workloads reconfigure
    # more than multithreaded ones (as in the paper), and asymmetric
    # configurations are exercised with meaningful frequency.
    assert all(count >= 0 for _, count, _ in stats.values())
    assert sum(multiprog) > 0
    fractions = [f for _, count, f in stats.values() if count > 0]
    assert any(f > 0.2 for f in fractions)
