"""Section 5.3: QoS-aware MSAT throttling.

The merge-aggressive policy can hurt individual applications; throttling
the MSAT up after merges that increase an application's misses steers the
system back toward the private (fair-share) configuration.  The figure of
merit: the worst per-application slowdown relative to the private
configuration must improve (or at least not degrade) with QoS enabled,
ideally approaching 1.0 (no application below its fair share).
"""

from benchmarks.common import format_rows, report, run
from repro.config import MorphConfig
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

MIX_SAMPLE = ["MIX 05", "MIX 11"]
EPOCHS = 5


def _worst_relative_ipc(result, private):
    morph_ipcs = result.mean_ipcs()
    private_ipcs = private.mean_ipcs()
    return min(morph_ipcs[c] / private_ipcs[c] for c in morph_ipcs)


def _collect():
    rows = {}
    for name in MIX_SAMPLE:
        workload = Workload.from_mix(mix_by_name(name))
        private = run("(1:1:16)", workload, epochs=EPOCHS)
        plain = run("morphcache", workload, epochs=EPOCHS)
        qos = run("morphcache", workload, epochs=EPOCHS,
                  morph=MorphConfig(qos=True))
        rows[name] = (
            _worst_relative_ipc(plain, private),
            _worst_relative_ipc(qos, private),
            qos.mean_throughput / plain.mean_throughput,
        )
    return rows


def test_sec53_qos(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = [[name, f"{plain:.3f}", f"{qos:.3f}", f"{ratio:.3f}"]
             for name, (plain, qos, ratio) in rows.items()]
    report("sec53_qos",
           "Section 5.3: worst per-application IPC relative to the private "
           "fair-share configuration\n(paper: QoS throttling prevents any "
           "application dropping below its fair share)\n"
           + format_rows(["mix", "no QoS", "QoS", "QoS thr/plain"], table))

    for name, (plain, qos, ratio) in rows.items():
        # QoS must not make the worst victim materially worse, and the
        # overall throughput cost of QoS must be bounded.
        assert qos >= plain - 0.10
        assert ratio > 0.85
