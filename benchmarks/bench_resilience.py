"""Resilience under injected faults: graceful degradation, not collapse.

A MorphCache machine with periodic hard slice failures (one L3 slice goes
offline every 10 epochs for 2 epochs, on top of occasional ACFV soft errors
and topology-state corruption) must keep running and keep most of its
throughput.  The figure of merit: throughput under each fault plan relative
to the fault-free MorphCache run, with the static all-shared baseline's
fault-free throughput as the floor adaptivity must not fall through by more
than a bounded margin.

Longer runs than the shared BENCH_CONFIG default so the every-10-epochs
slice-failure cadence actually fires several times.
"""

from benchmarks.common import BENCH_CONFIG, SEED, format_rows, report
from repro.sim.experiment import run_scheme
from repro.sim.workload import Workload
from repro.resilience.faults import parse_fault_spec
from repro.workloads import mix_by_name

MIX_SAMPLE = ["MIX 02", "MIX 08"]
EPOCHS = 24
CONFIG = BENCH_CONFIG.with_(epochs=EPOCHS, accesses_per_core_per_epoch=1000)

#: Fault plans in increasing severity.  The headline plan is the issue's
#: scenario: an L3 slice failure every 10 epochs.
PLANS = {
    "none": None,
    "soft-errors": "flip-acfv:every=4:bits=8,seed=7",
    "slice/10": "disable-slice:every=10:level=l3:duration=2,seed=7",
    "slice+soft": ("disable-slice:every=10:level=l3:duration=2,"
                   "flip-acfv:every=4:bits=8,corrupt-topology:every=9,seed=7"),
}


def _collect():
    rows = {}
    for name in MIX_SAMPLE:
        workload = Workload.from_mix(mix_by_name(name))
        static_clean = run_scheme("(16:1:1)", workload, CONFIG, seed=SEED,
                                  epochs=EPOCHS).mean_throughput
        morph = {
            plan_name: run_scheme(
                "morphcache", workload, CONFIG, seed=SEED, epochs=EPOCHS,
                fault_plan=parse_fault_spec(spec) if spec else None,
            ).mean_throughput
            for plan_name, spec in PLANS.items()
        }
        rows[name] = (static_clean, morph)
    return rows


def test_resilience_degrades_gracefully(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    table = []
    for name, (static_clean, morph) in rows.items():
        clean = morph["none"]
        table.append([name, f"{static_clean:.3f}"]
                     + [f"{morph[p]:.3f} ({morph[p] / clean:.2f}x)"
                        for p in PLANS])
    report("resilience",
           "Resilience: MorphCache mean throughput under injected faults\n"
           "(static = fault-free (16:1:1) baseline; parenthesised ratios are "
           "relative to fault-free MorphCache)\n"
           + format_rows(["mix", "static"] + list(PLANS), table))

    for name, (static_clean, morph) in rows.items():
        clean = morph["none"]
        for plan_name, throughput in morph.items():
            # Graceful degradation: every faulted run completes and keeps
            # at least 70 % of the fault-free MorphCache throughput.
            assert throughput > 0.70 * clean, (name, plan_name)
        # Adaptivity under the headline slice-failure plan must not fall
        # below 80 % of what the rigid fault-free baseline achieves.
        assert morph["slice/10"] > 0.80 * static_clean, name
