"""Batch-engine benchmark: event vs batch accesses/second, same epochs.

Times one epoch of MIX 01 through both engines on the three topologies that
exercise the batch engine's dispatch tiers:

- ``private`` ``(1:1:16)`` — disjoint per-core address spaces, so the
  per-core specialised kernel (``batch-private-percore``) handles the whole
  epoch;
- ``merged`` ``(4:4:1)`` — multi-slice search groups on the slice-group
  kernel (``batch-merged``): aggregate per-group residency maps instead of
  per-access probes of every slice;
- ``shared`` ``(16:1:1)`` — one machine-wide search group, the same kernel
  under its ``batch-shared`` tag.

A second, stretch-scale section re-times merged/shared on a **64-core**
machine (``(4:4:4)`` and ``(64:1:1)``, MIX 01 tiled ×4) — the group kernel's
advantage *grows* with group size because the event engine's per-access
group probe is O(slices) while the kernel's residency lookup is O(1).

Both engines consume identical traces and produce bit-identical state (the
differential suite in ``tests/sim/test_batch_equivalence.py`` proves it);
this benchmark records only the throughput ratio.  Each topology is
measured best-of-``PASSES`` to damp scheduler noise.  Output goes to
``benchmarks/results/batch.txt`` and, machine-readably, ``BENCH_batch.json``
at the repo root.  CI gates on the committed merged/shared speedups via
``benchmarks/compare_baseline.py --gate`` (a >20% drop fails the job).

The timed region is purely the epoch runner: trace generation, timer
construction and ``end_epoch`` happen outside the clock.
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.common import BENCH_CONFIG, SEED, format_rows, report
from repro.cpu.cmp import CmpSystem
from repro.cpu.core_model import CoreTimingModel
from repro.sim.batch import (MERGED_KERNEL, PRIVATE_PERCORE, SHARED_KERNEL,
                             run_epoch_batch)
from repro.sim.engine import run_epoch
from repro.sim.workload import Workload
from repro.workloads import MIXES

TOPOLOGIES = {"private": "(1:1:16)", "merged": "(4:4:1)", "shared": "(16:1:1)"}

#: The dispatch tier each topology must land on — a silent fall-through to a
#: slower tier would otherwise masquerade as a perf regression.
EXPECTED_TAGS = {"private": PRIVATE_PERCORE, "merged": MERGED_KERNEL,
                 "shared": SHARED_KERNEL}

#: Stretch benchmark: the same merged/shared shapes at 64 cores.
SCALED_TOPOLOGIES = {"merged64": "(4:4:4)", "shared64": "(64:1:1)"}
SCALED_TAGS = {"merged64": MERGED_KERNEL, "shared64": SHARED_KERNEL}
SCALED_CONFIG = BENCH_CONFIG.with_(cores=64,
                                   accesses_per_core_per_epoch=500)

EPOCHS = 4   # epoch 0 doubles as cache warm-up; all epochs are timed
PASSES = 3   # best-of-N passes per (topology, engine)
SCALED_PASSES = 2  # the 64-core event runs are slow; keep CI tractable

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _bench_workload(config) -> Workload:
    """MIX 01, tiled across however many cores the config has."""
    base = Workload.from_mix(MIXES[0])
    reps = config.cores // len(base.models)
    if reps == 1:
        return base
    return Workload(name=f"{base.name} x{reps}", models=base.models * reps)


def _measure_once(label: str, engine: str, expected_tag: str,
                  config) -> float:
    """Accesses/second for one engine over EPOCHS epochs of MIX 01."""
    workload = _bench_workload(config)
    system = CmpSystem(config, static_label=label)
    threads = workload.build_threads(config, seed=SEED)
    active = [core for core, thread in enumerate(threads) if thread is not None]
    n = config.accesses_per_core_per_epoch
    total_accesses = 0
    total_time = 0.0
    for _ in range(EPOCHS):
        traces = {core: threads[core].generate(n) for core in active}
        timers = {core: CoreTimingModel(config.issue_width,
                                        memory_latency=config.latency.memory)
                  for core in active}
        start = time.perf_counter()
        if engine == "batch":
            tag = run_epoch_batch(system, traces, timers, n)
        else:
            run_epoch(system, traces, timers, n)
            tag = None
        total_time += time.perf_counter() - start
        total_accesses += n * len(active)
        system.end_epoch()
        if tag is not None:
            assert tag == expected_tag, (label, tag, expected_tag)
    return total_accesses / total_time


def measure(label: str, engine: str, expected_tag: str,
            config=BENCH_CONFIG, passes: int = PASSES) -> float:
    return max(_measure_once(label, engine, expected_tag, config)
               for _ in range(passes))


def test_batch_engine(benchmark):
    def sweep():
        rates = {}
        for name, label in TOPOLOGIES.items():
            rates[name] = {
                engine: measure(label, engine, EXPECTED_TAGS[name])
                for engine in ("event", "batch")
            }
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedups = {name: rates[name]["batch"] / rates[name]["event"]
                for name in TOPOLOGIES}

    scaled_rates = {
        name: {engine: measure(label, engine, SCALED_TAGS[name],
                               config=SCALED_CONFIG, passes=SCALED_PASSES)
               for engine in ("event", "batch")}
        for name, label in SCALED_TOPOLOGIES.items()
    }
    scaled_speedups = {name: scaled_rates[name]["batch"]
                       / scaled_rates[name]["event"]
                       for name in SCALED_TOPOLOGIES}

    rows = [[name, TOPOLOGIES[name], EXPECTED_TAGS[name],
             f"{rates[name]['event']:.0f}", f"{rates[name]['batch']:.0f}",
             f"{speedups[name]:.2f}x"]
            for name in TOPOLOGIES]
    rows += [[name, SCALED_TOPOLOGIES[name], SCALED_TAGS[name],
              f"{scaled_rates[name]['event']:.0f}",
              f"{scaled_rates[name]['batch']:.0f}",
              f"{scaled_speedups[name]:.2f}x"]
             for name in SCALED_TOPOLOGIES]
    table = format_rows(
        ["path", "topology", "batch tier", "event acc/s", "batch acc/s",
         "speedup"], rows)
    report("batch",
           "Batch engine vs event engine: accesses/second per epoch "
           "(MIX 01, small preset, seed 2011; *64 rows: 64-core stretch, "
           "MIX 01 x4)\n"
           f"{table}\n\n"
           "Both engines are bit-identical (tests/sim/"
           "test_batch_equivalence.py); best-of-"
           f"{PASSES} passes per cell ({SCALED_PASSES} at 64 cores).")

    JSON_PATH.write_text(json.dumps({
        "config": "SMALL(accesses_per_core_per_epoch=2000, epochs=3)",
        "workload": "MIX 01",
        "seed": SEED,
        "epochs_timed": EPOCHS,
        "passes": PASSES,
        "unit": "accesses/second",
        "event": {name: rates[name]["event"] for name in TOPOLOGIES},
        "batch": {name: rates[name]["batch"] for name in TOPOLOGIES},
        "speedup": speedups,
        "scaled64": {
            "config": "SMALL(cores=64, accesses_per_core_per_epoch=500)",
            "workload": "MIX 01 x4",
            "passes": SCALED_PASSES,
            "event": {n: scaled_rates[n]["event"] for n in SCALED_TOPOLOGIES},
            "batch": {n: scaled_rates[n]["batch"] for n in SCALED_TOPOLOGIES},
            "speedup": scaled_speedups,
        },
    }, indent=2) + "\n")

    # Loud-regression floors, chosen so a noisy/loaded runner doesn't flake
    # while a real regression (e.g. a silent fall-through to batch-general,
    # which the per-epoch tag asserts above also catch) still fails.  The
    # committed baselines are the real ratchet: compare_baseline.py --gate
    # fails CI when merged/shared drop >20% below BENCH_batch.json.
    assert speedups["private"] >= 2.0, speedups
    assert speedups["merged"] >= 1.5, speedups
    assert speedups["shared"] >= 1.5, speedups
    assert all(s >= 0.9 for s in speedups.values()), speedups
    assert all(s >= 1.5 for s in scaled_speedups.values()), scaled_speedups
