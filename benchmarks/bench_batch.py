"""Batch-engine benchmark: event vs batch accesses/second, same epochs.

Times one epoch of MIX 01 through both engines on the three topologies that
exercise the batch engine's dispatch tiers:

- ``private`` ``(1:1:16)`` — disjoint per-core address spaces, so the
  per-core specialised kernel (``batch-private-percore``) handles the whole
  epoch;
- ``merged`` ``(4:4:1)`` — multi-slice search groups, the general batch
  kernel over the real access path;
- ``shared`` ``(16:1:1)`` — 16-way search groups, again the general kernel.

Both engines consume identical traces and produce bit-identical state (the
differential suite in ``tests/sim/test_batch_equivalence.py`` proves it);
this benchmark records only the throughput ratio.  Each topology is
measured best-of-``PASSES`` to damp scheduler noise.  Output goes to
``benchmarks/results/batch.txt`` and, machine-readably, ``BENCH_batch.json``
at the repo root.

The timed region is purely the epoch runner: trace generation, timer
construction and ``end_epoch`` happen outside the clock.
"""

from __future__ import annotations

import json
import pathlib
import time

from benchmarks.common import BENCH_CONFIG, SEED, format_rows, report
from repro.cpu.cmp import CmpSystem
from repro.cpu.core_model import CoreTimingModel
from repro.sim.batch import GENERAL_KERNEL, PRIVATE_PERCORE, run_epoch_batch
from repro.sim.engine import run_epoch
from repro.sim.workload import Workload
from repro.workloads import MIXES

TOPOLOGIES = {"private": "(1:1:16)", "merged": "(4:4:1)", "shared": "(16:1:1)"}

#: The dispatch tier each topology must land on — a silent fall-through to a
#: slower tier would otherwise masquerade as a perf regression.
EXPECTED_TAGS = {"private": PRIVATE_PERCORE, "merged": GENERAL_KERNEL,
                 "shared": GENERAL_KERNEL}

EPOCHS = 4   # epoch 0 doubles as cache warm-up; all epochs are timed
PASSES = 3   # best-of-N passes per (topology, engine)

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def _measure_once(label: str, engine: str, expected_tag: str) -> float:
    """Accesses/second for one engine over EPOCHS epochs of MIX 01."""
    workload = Workload.from_mix(MIXES[0])
    system = CmpSystem(BENCH_CONFIG, static_label=label)
    threads = workload.build_threads(BENCH_CONFIG, seed=SEED)
    active = [core for core, thread in enumerate(threads) if thread is not None]
    n = BENCH_CONFIG.accesses_per_core_per_epoch
    total_accesses = 0
    total_time = 0.0
    for _ in range(EPOCHS):
        traces = {core: threads[core].generate(n) for core in active}
        timers = {core: CoreTimingModel(BENCH_CONFIG.issue_width,
                                        memory_latency=BENCH_CONFIG.latency.memory)
                  for core in active}
        start = time.perf_counter()
        if engine == "batch":
            tag = run_epoch_batch(system, traces, timers, n)
        else:
            run_epoch(system, traces, timers, n)
            tag = None
        total_time += time.perf_counter() - start
        total_accesses += n * len(active)
        system.end_epoch()
        if tag is not None:
            assert tag == expected_tag, (label, tag, expected_tag)
    return total_accesses / total_time


def measure(label: str, engine: str, expected_tag: str) -> float:
    return max(_measure_once(label, engine, expected_tag)
               for _ in range(PASSES))


def test_batch_engine(benchmark):
    def sweep():
        rates = {}
        for name, label in TOPOLOGIES.items():
            rates[name] = {
                engine: measure(label, engine, EXPECTED_TAGS[name])
                for engine in ("event", "batch")
            }
        return rates

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    speedups = {name: rates[name]["batch"] / rates[name]["event"]
                for name in TOPOLOGIES}

    rows = [[name, TOPOLOGIES[name], EXPECTED_TAGS[name],
             f"{rates[name]['event']:.0f}", f"{rates[name]['batch']:.0f}",
             f"{speedups[name]:.2f}x"]
            for name in TOPOLOGIES]
    table = format_rows(
        ["path", "topology", "batch tier", "event acc/s", "batch acc/s",
         "speedup"], rows)
    report("batch",
           "Batch engine vs event engine: accesses/second per epoch "
           "(MIX 01, small preset, seed 2011)\n"
           f"{table}\n\n"
           "Both engines are bit-identical (tests/sim/"
           "test_batch_equivalence.py); best-of-"
           f"{PASSES} passes per cell.")

    JSON_PATH.write_text(json.dumps({
        "config": "SMALL(accesses_per_core_per_epoch=2000, epochs=3)",
        "workload": "MIX 01",
        "seed": SEED,
        "epochs_timed": EPOCHS,
        "passes": PASSES,
        "unit": "accesses/second",
        "event": {name: rates[name]["event"] for name in TOPOLOGIES},
        "batch": {name: rates[name]["batch"] for name in TOPOLOGIES},
        "speedup": speedups,
    }, indent=2) + "\n")

    # The tentpole target is >=3x on the private topology; 2x here is the
    # loud-regression floor so a noisy/loaded machine doesn't flake the
    # (non-gating) CI smoke run while a real regression still fails.
    assert speedups["private"] >= 2.0, speedups
    # The general kernel routes through the same access path as the event
    # loop, so merged/shared sit at parity; 0.9 is the noise band.
    assert all(s >= 0.9 for s in speedups.values()), speedups
