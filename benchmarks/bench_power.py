"""Segmented-bus energy (the paper's stated future work, quantified).

Runs MorphCache on a sample of mixes, collects the bus traffic its merged
groups generated, and compares the per-transaction energy of the segmented
bus against a monolithic shared bus carrying the same traffic.
"""

from benchmarks.common import format_rows, report, run, system_for
from repro.interconnect.power import (
    SegmentedBusPowerModel,
    traffic_from_hierarchy_stats,
)
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

MIX_SAMPLE = ["MIX 05", "MIX 08", "MIX 11"]
EPOCHS = 4


def _collect():
    model = SegmentedBusPowerModel(16)
    rows = {}
    for mix_name in MIX_SAMPLE:
        workload = Workload.from_mix(mix_by_name(mix_name))
        run("morphcache", workload, epochs=EPOCHS, keep_system=True)
        system = system_for("morphcache", workload, epochs=EPOCHS)
        traffic = traffic_from_hierarchy_stats(system.hierarchy)
        groups = system.hierarchy.l2_groups
        segmented = model.report(groups, traffic)
        monolithic = model.monolithic_report(sum(traffic.values()) or 1)
        savings = model.savings_vs_monolithic(groups, traffic)
        rows[mix_name] = (sum(traffic.values()), segmented.total_pj,
                          monolithic.total_pj, savings)
    return rows


def test_power(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = [[name, str(txns), f"{seg:.2f}", f"{mono:.2f}", f"{savings:.0%}"]
             for name, (txns, seg, mono, savings) in rows.items()]
    report("power",
           "Segmented-bus energy per transaction vs a monolithic bus\n"
           "(the paper's future work: quantify the segmented bus's power "
           "advantage)\n"
           + format_rows(["mix", "bus txns", "segmented pJ", "monolithic pJ",
                          "savings"], table))

    # Wherever MorphCache created bus traffic, segmentation must not cost
    # more than the monolithic bus.
    for name, (txns, seg, mono, savings) in rows.items():
        if txns:
            assert seg <= mono + 1e-9
            assert savings >= 0.0
