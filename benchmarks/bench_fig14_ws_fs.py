"""Figure 14: weighted speedup and fair speedup versus the best static.

For each mix, computes WS and FS of MorphCache and of each static topology
(normalised against each application's alone-run IPC), and compares
MorphCache against the baseline and the best static configuration on both
metrics.  The paper reports +32.8 %/+12.3 % (WS, vs baseline / best static
(2:2:4)) and +29.7 %/+10.8 % (FS, best static (4:4:1)).
"""

from benchmarks.common import (
    BASELINE,
    BENCH_CONFIG,
    SEED,
    STATICS,
    format_rows,
    geometric_mean,
    report,
    run,
)
from repro.metrics import fair_speedup, weighted_speedup
from repro.sim.experiment import alone_ipcs
from repro.sim.workload import Workload
from repro.workloads import MIXES

SCHEMES = STATICS + ["(2:2:4)", "morphcache"]


def _speedups():
    table = {}
    for mix in MIXES:
        workload = Workload.from_mix(mix)
        alone = alone_ipcs(mix.benchmark_names, BENCH_CONFIG, seed=SEED,
                           epochs=1)
        per_scheme = {}
        for scheme in SCHEMES:
            result = run(scheme, workload)
            ipcs = [result.mean_ipcs()[c] for c in range(16)]
            per_scheme[scheme] = (
                weighted_speedup(ipcs, alone),
                fair_speedup(ipcs, alone),
            )
        table[mix.name] = per_scheme
    return table


def test_fig14_ws_fs(benchmark):
    table = benchmark.pedantic(_speedups, rounds=1, iterations=1)
    rows = []
    for mix_name, per_scheme in table.items():
        base_ws, base_fs = per_scheme[BASELINE]
        morph_ws, morph_fs = per_scheme["morphcache"]
        best_ws = max(ws for ws, _ in per_scheme.values())
        best_fs = max(fs for _, fs in per_scheme.values())
        rows.append([
            mix_name,
            f"{morph_ws / base_ws:.3f}", f"{morph_ws / best_ws:.3f}",
            f"{morph_fs / base_fs:.3f}", f"{morph_fs / best_fs:.3f}",
        ])
    header = ["mix", "WS/base", "WS/best", "FS/base", "FS/best"]
    ws_vs_base = geometric_mean([float(r[1]) for r in rows])
    fs_vs_base = geometric_mean([float(r[3]) for r in rows])
    report("fig14_ws_fs",
           "Figure 14: MorphCache weighted/fair speedup relative to the "
           "baseline and the best scheme per mix\n"
           "(paper: WS +32.8% vs base, +12.3% vs best static (2:2:4); "
           "FS +29.7% / +10.8% vs (4:4:1))\n"
           + format_rows(header, rows)
           + f"\ngeomean: WS/base {ws_vs_base:.3f}, FS/base {fs_vs_base:.3f}")

    assert ws_vs_base > 0.95
    assert fs_vs_base > 0.95
    # FS is a harmonic mean: it can never exceed WS for the same run.
    for per_scheme in table.values():
        ws, fs = per_scheme["morphcache"]
        assert fs <= ws + 1e-9
