"""Figure 5: ACFV fidelity versus an oracle footprint estimator.

Runs the hmmer model on one core with private slices, measuring at every
interval both the oracle active footprint (exact line sets) and ``|ACFV|``
for vectors of 2..512 bits under the XOR-fold and modulo hashes.  The
paper's study is on the 1 MB slice, so the vectors observe the L3-level
active footprint (where the strided warm reuse lives — the pattern that
exposes the modulo hash's aliasing).  The
paper's claims: correlation rises with vector length, XOR beats modulo at
small sizes, and ~128 bits is enough for ~0.96 correlation.
"""

from benchmarks.common import BENCH_CONFIG, format_rows, report
from repro.caches.hierarchy import CacheHierarchy, HierarchyObserver
from repro.core.acfv import Acfv
from repro.metrics import pearson
from repro.sim.oracle import OracleFootprint
from repro.sim.workload import Workload

BIT_SIZES = [2, 8, 32, 128, 512]
INTERVALS = 24
ACCESSES_PER_INTERVAL = 1500


class VectorArray(HierarchyObserver):
    """One ACFV per (bits, hash) candidate, fed from L2 events of core 0."""

    def __init__(self, levels=("l2", "l3")):
        self.levels = levels
        self.vectors = {
            (bits, hash_name): Acfv(bits, hash_name)
            for bits in BIT_SIZES
            for hash_name in ("xor", "modulo")
        }

    def on_hit(self, level, slice_id, core, tag):
        if level in self.levels and core == 0:
            for vector in self.vectors.values():
                vector.set(tag)

    def reset(self):
        for vector in self.vectors.values():
            vector.reset()


def _collect_series():
    workload = Workload.alone("hmmer")
    thread = workload.build_threads(BENCH_CONFIG, seed=5)[0]
    oracle = OracleFootprint(BENCH_CONFIG.cores)
    vectors = VectorArray(levels=("l2", "l3"))

    class Both(HierarchyObserver):
        # The oracle must implement the same definition the vectors do —
        # "unique lines referenced (reused) in the interval" — so evictions
        # are NOT forwarded: both sides accumulate and reset per interval.
        def on_hit(self, level, slice_id, core, tag):
            oracle.on_hit(level, slice_id, core, tag)
            vectors.on_hit(level, slice_id, core, tag)

    hierarchy = CacheHierarchy(BENCH_CONFIG, observer=Both())
    oracle_series = []
    estimate_series = {key: [] for key in vectors.vectors}
    for _ in range(INTERVALS):
        trace = thread.generate(ACCESSES_PER_INTERVAL)
        for line, write, _gap in trace:
            hierarchy.access(0, line, write)
        oracle_series.append(oracle.footprint("l3", 0))
        for key, vector in vectors.vectors.items():
            estimate_series[key].append(vector.ones)
        oracle.reset()
        vectors.reset()
    return oracle_series, estimate_series


def test_fig05_acfv_correlation(benchmark):
    oracle_series, estimate_series = benchmark.pedantic(
        _collect_series, rounds=1, iterations=1
    )
    correlations = {
        key: pearson(oracle_series, series)
        for key, series in estimate_series.items()
    }
    rows = []
    for hash_name in ("xor", "modulo"):
        rows.append([hash_name] + [
            f"{correlations[(bits, hash_name)]:.3f}" for bits in BIT_SIZES
        ])
    table = format_rows(["hash"] + [str(b) for b in BIT_SIZES], rows)
    report("fig05_acfv_correlation",
           "Figure 5: correlation of |ACFV| with the oracle footprint for "
           "hmmer\n(paper: 0.94 at 64 bits, 0.96 at 128 bits; XOR >= "
           f"modulo at small sizes)\n{table}")

    # Shape: the largest XOR vector must correlate strongly, and more bits
    # must not make the XOR estimate dramatically worse.
    assert correlations[(512, "xor")] > 0.8
    assert correlations[(128, "xor")] > 0.7
    assert correlations[(128, "xor")] >= correlations[(2, "xor")] - 0.05
    # XOR at least as good as modulo where the paper shows the gap.
    assert (correlations[(8, "xor")] >= correlations[(8, "modulo")] - 0.1)
