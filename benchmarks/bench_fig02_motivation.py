"""Figure 2: the motivation study.

(a) Throughput of MIX 01 over execution under four static topologies,
    normalised per epoch to the all-shared baseline — the best topology
    varies over time.
(b) dedup vs freqmine under four topologies — no single topology is best
    for both applications.
"""

from benchmarks.common import (
    BASELINE,
    EPOCHS,
    STATICS,
    format_rows,
    report,
    run,
)
from repro.sim.workload import Workload
from repro.workloads import mix_by_name


def _figure_2a():
    workload = Workload.from_mix(mix_by_name("MIX 01"))
    series = {}
    for label in STATICS:
        series[label] = run(label, workload, epochs=EPOCHS).throughput_series()
    base = series[BASELINE]
    rows = []
    for label in STATICS:
        if label == BASELINE:
            continue
        normalised = [value / base[i] for i, value in enumerate(series[label])]
        rows.append([label] + [f"{v:.3f}" for v in normalised])
    header = ["topology"] + [f"epoch{i}" for i in range(EPOCHS)]
    return format_rows(header, rows), series


def _figure_2b():
    rows = []
    winners = {}
    for name in ("dedup", "freqmine"):
        workload = Workload.from_parsec(name)
        results = {label: run(label, workload, epochs=EPOCHS)
                   for label in STATICS}
        base = results[BASELINE].mean_throughput
        normalised = {label: results[label].mean_throughput / base
                      for label in STATICS}
        winners[name] = max(normalised, key=normalised.get)
        rows.append([name] + [f"{normalised[label]:.3f}" for label in STATICS])
    return format_rows(["benchmark"] + STATICS, rows), winners


def test_fig02_motivation(benchmark):
    def produce():
        table_a, series = _figure_2a()
        table_b, winners = _figure_2b()
        return table_a, series, table_b, winners

    table_a, series, table_b, winners = benchmark.pedantic(
        produce, rounds=1, iterations=1
    )
    report("fig02_motivation",
           "Figure 2(a): MIX 01 per-epoch throughput normalised to "
           f"{BASELINE}\n{table_a}\n\n"
           "Figure 2(b): PARSEC apps under static topologies "
           f"(paper: dedup prefers (4:4:1), freqmine (1:16:1))\n{table_b}\n\n"
           f"winners: {winners}")

    # Shape assertions: every topology produced every epoch, and the two
    # PARSEC applications exercise the comparison at all.
    assert all(len(s) == EPOCHS for s in series.values())
    assert set(winners) == {"dedup", "freqmine"}
